#include "baselines/decay_model.h"

#include <gtest/gtest.h>

#include "testing/paper_example.h"

namespace maroon {
namespace {

const Attribute kTitle = "Title";

TEST(DecayModelTest, DisagreementDecayIsMonotone) {
  const DecayModel model =
      DecayModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  double previous = 0.0;
  for (int64_t delta = 1; delta <= 15; ++delta) {
    const double d = model.DisagreementDecay(kTitle, delta);
    EXPECT_GE(d, previous) << "delta " << delta;
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
    previous = d;
  }
}

TEST(DecayModelTest, DisagreementDecayZeroAtZeroDelta) {
  const DecayModel model =
      DecayModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  EXPECT_DOUBLE_EQ(model.DisagreementDecay(kTitle, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.DisagreementDecay(kTitle, -3), 0.0);
}

TEST(DecayModelTest, UntrainedAttributeIsZero) {
  const DecayModel model =
      DecayModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  EXPECT_DOUBLE_EQ(model.DisagreementDecay("Location", 5), 0.0);
  EXPECT_DOUBLE_EQ(model.AgreementDecay("Location", 5), 0.0);
}

TEST(DecayModelTest, ClosedSpellsDriveDisagreement) {
  // One entity holding a value for 2 years, then changing: a closed spell
  // of length 2. d(1) = 0 (no spell ended within 1), d(2) high.
  ProfileSet profiles;
  EntityProfile p("e", "E");
  (void)p.sequence(kTitle).Append(Triple(2000, 2001, MakeValueSet({"a"})));
  (void)p.sequence(kTitle).Append(Triple(2002, 2005, MakeValueSet({"b"})));
  profiles.push_back(std::move(p));
  const DecayModel model = DecayModel::Train(profiles, {kTitle});
  EXPECT_DOUBLE_EQ(model.DisagreementDecay(kTitle, 1), 0.0);
  EXPECT_GT(model.DisagreementDecay(kTitle, 2), 0.0);
}

TEST(DecayModelTest, AgreementDecayIsMonotoneAndBounded) {
  const DecayModel model =
      DecayModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  double previous = 0.0;
  for (int64_t delta = 0; delta <= 15; ++delta) {
    const double d = model.AgreementDecay(kTitle, delta);
    EXPECT_GE(d, previous);
    EXPECT_LE(d, 1.0);
    previous = d;
  }
  // Careers share titles ("Manager" etc.), so agreement is non-trivial.
  EXPECT_GT(model.AgreementDecay(kTitle, 15), 0.0);
}

TEST(DecayModelTest, StateProbabilityRecurringVsChanging) {
  const DecayModel model =
      DecayModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  TemporalSequence history;
  ASSERT_TRUE(
      history.Append(Triple(2003, 2009, MakeValueSet({"Manager"}))).ok());
  // Shortly after: staying Manager should be likelier than any change.
  const double stay = model.StateProbability(
      kTitle, history, MakeValueSet({"Manager"}), Interval(2010, 2010));
  const double change = model.StateProbability(
      kTitle, history, MakeValueSet({"Director"}), Interval(2010, 2010));
  EXPECT_GT(stay, change);
  // Like MUTA, the decay model cannot rank different target values.
  const double change2 = model.StateProbability(
      kTitle, history, MakeValueSet({"IT Contractor"}), Interval(2010, 2010));
  EXPECT_DOUBLE_EQ(change, change2);
}

TEST(DecayModelTest, StateProbabilityEdgeCases) {
  const DecayModel model =
      DecayModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  TemporalSequence history;
  ASSERT_TRUE(
      history.Append(Triple(2000, 2005, MakeValueSet({"Manager"}))).ok());
  EXPECT_DOUBLE_EQ(model.StateProbability(kTitle, TemporalSequence(),
                                          MakeValueSet({"x"}),
                                          Interval(2008, 2008)),
                   0.0);
  EXPECT_DOUBLE_EQ(
      model.StateProbability(kTitle, history, {}, Interval(2008, 2008)), 0.0);
}

}  // namespace
}  // namespace maroon
