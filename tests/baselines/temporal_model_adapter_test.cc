#include "baselines/temporal_model.h"

#include <gtest/gtest.h>

#include "baselines/decay_model.h"
#include "baselines/muta_model.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kTitle;

TEST(TransitionTemporalModelTest, AdapterMatchesEquationFourteen) {
  const TransitionModel model = TransitionModel::Train(
      testing::CareerTrainingProfiles(), {kTitle});
  const TransitionTemporalModel adapter(&model);

  const EntityProfile david = testing::DavidBrownProfile();
  const TemporalSequence& history = david.sequence(kTitle);
  const ValueSet to = MakeValueSet({"Director"});
  const Interval state(2011, 2011);
  EXPECT_DOUBLE_EQ(
      adapter.StateProbability(kTitle, history, to, state),
      model.SequenceToStateProbability(kTitle, history, to, state));
}

TEST(TemporalModelInterfaceTest, PolymorphicUseThroughBasePointer) {
  // All three temporal models satisfy the interface and produce scores in
  // [0, 1] for the same query — the contract the AFDS linker relies on.
  const ProfileSet training = testing::CareerTrainingProfiles();
  const TransitionModel transition =
      TransitionModel::Train(training, {kTitle});
  const TransitionTemporalModel adapter(&transition);
  const MutaModel muta = MutaModel::Train(training, {kTitle});
  const DecayModel decay = DecayModel::Train(training, {kTitle});

  const EntityProfile david = testing::DavidBrownProfile();
  const TemporalSequence& history = david.sequence(kTitle);
  const ValueSet to = MakeValueSet({"Director"});
  const Interval state(2011, 2011);

  for (const TemporalModel* m :
       std::vector<const TemporalModel*>{&adapter, &muta, &decay}) {
    const double p = m->StateProbability(kTitle, history, to, state);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(TemporalModelInterfaceTest, OnlyTransitionModelDiscriminatesValues) {
  // The defining difference the paper's Figure 4 measures: given the same
  // history, the transition model ranks Director above IT Contractor; the
  // value-agnostic models cannot.
  const ProfileSet training = testing::CareerTrainingProfiles();
  const TransitionModel transition =
      TransitionModel::Train(training, {kTitle});
  const TransitionTemporalModel adapter(&transition);
  const MutaModel muta = MutaModel::Train(training, {kTitle});

  const EntityProfile david = testing::DavidBrownProfile();
  const TemporalSequence& history = david.sequence(kTitle);
  const Interval state(2011, 2011);
  const ValueSet director = MakeValueSet({"Director"});
  const ValueSet contractor = MakeValueSet({"IT Contractor"});

  EXPECT_GT(adapter.StateProbability(kTitle, history, director, state),
            adapter.StateProbability(kTitle, history, contractor, state));
  EXPECT_DOUBLE_EQ(muta.StateProbability(kTitle, history, director, state),
                   muta.StateProbability(kTitle, history, contractor, state));
}

}  // namespace
}  // namespace maroon
