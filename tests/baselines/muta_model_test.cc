#include "baselines/muta_model.h"

#include <gtest/gtest.h>

#include "testing/paper_example.h"

namespace maroon {
namespace {

const Attribute kTitle = "Title";

ProfileSet Figure1Profiles() {
  ProfileSet profiles;
  EntityProfile david("David", "David");
  (void)david.sequence(kTitle).Append(
      Triple(2000, 2002, MakeValueSet({"Engineer"})));
  (void)david.sequence(kTitle).Append(
      Triple(2003, 2009, MakeValueSet({"Manager"})));
  profiles.push_back(std::move(david));
  EntityProfile tom("Tom", "Tom");
  (void)tom.sequence(kTitle).Append(
      Triple(2000, 2001, MakeValueSet({"Engineer"})));
  (void)tom.sequence(kTitle).Append(
      Triple(2002, 2003, MakeValueSet({"Analyst"})));
  (void)tom.sequence(kTitle).Append(
      Triple(2004, 2005, MakeValueSet({"Manager"})));
  profiles.push_back(std::move(tom));
  return profiles;
}

TEST(MutaModelTest, RecurrenceMatchesTable4Aggregate) {
  const MutaModel model = MutaModel::Train(Figure1Profiles(), {kTitle});
  // At Δt = 3 the Figure-1 corpus has 10 transitions, 4 of them recurrences.
  EXPECT_DOUBLE_EQ(model.RecurrenceProbability(kTitle, 3), 0.4);
}

TEST(MutaModelTest, DeltaZeroIsCertainRecurrence) {
  const MutaModel model = MutaModel::Train(Figure1Profiles(), {kTitle});
  EXPECT_DOUBLE_EQ(model.RecurrenceProbability(kTitle, 0), 1.0);
}

TEST(MutaModelTest, RecurrenceDecreasesOverLongGaps) {
  const MutaModel model =
      MutaModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  // Values change over careers: short gaps recur more than long ones.
  EXPECT_GT(model.RecurrenceProbability(kTitle, 1),
            model.RecurrenceProbability(kTitle, 10));
}

TEST(MutaModelTest, ClampsBeyondLearnedRange) {
  const MutaModel model = MutaModel::Train(Figure1Profiles(), {kTitle});
  const int64_t max_delta = model.MaxDelta(kTitle);
  EXPECT_GT(max_delta, 0);
  EXPECT_DOUBLE_EQ(model.RecurrenceProbability(kTitle, max_delta + 50),
                   model.RecurrenceProbability(kTitle, max_delta));
}

TEST(MutaModelTest, UntrainedAttributeIsZero) {
  const MutaModel model = MutaModel::Train(Figure1Profiles(), {kTitle});
  EXPECT_DOUBLE_EQ(model.RecurrenceProbability("Location", 3), 0.0);
  EXPECT_EQ(model.MaxDelta("Location"), 0);
}

TEST(MutaModelTest, StateProbabilityIsValueAgnostic) {
  // The paper's core criticism: MUTA cannot distinguish WHICH value an
  // entity changes to — any non-recurring value gets the same probability.
  const MutaModel model =
      MutaModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  TemporalSequence history;
  ASSERT_TRUE(
      history.Append(Triple(2003, 2009, MakeValueSet({"Manager"}))).ok());
  const Interval state(2011, 2011);
  const double to_director = model.StateProbability(
      kTitle, history, MakeValueSet({"Director"}), state);
  const double to_contractor = model.StateProbability(
      kTitle, history, MakeValueSet({"IT Contractor"}), state);
  EXPECT_DOUBLE_EQ(to_director, to_contractor);
}

TEST(MutaModelTest, RecurringStateUsesRecurrenceProbability) {
  const MutaModel model =
      MutaModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  TemporalSequence history;
  ASSERT_TRUE(
      history.Append(Triple(2005, 2005, MakeValueSet({"Manager"}))).ok());
  const Interval state(2007, 2007);
  const double recur = model.StateProbability(
      kTitle, history, MakeValueSet({"Manager"}), state);
  EXPECT_DOUBLE_EQ(recur, model.RecurrenceProbability(kTitle, 2));
  const double change = model.StateProbability(
      kTitle, history, MakeValueSet({"Director"}), state);
  EXPECT_DOUBLE_EQ(change, 1.0 - model.RecurrenceProbability(kTitle, 2));
}

TEST(MutaModelTest, StateProbabilityEdgeCases) {
  const MutaModel model = MutaModel::Train(Figure1Profiles(), {kTitle});
  TemporalSequence history;
  ASSERT_TRUE(
      history.Append(Triple(2000, 2001, MakeValueSet({"Engineer"}))).ok());
  EXPECT_DOUBLE_EQ(model.StateProbability(kTitle, TemporalSequence(),
                                          MakeValueSet({"x"}),
                                          Interval(2005, 2005)),
                   0.0);
  EXPECT_DOUBLE_EQ(
      model.StateProbability(kTitle, history, {}, Interval(2005, 2005)), 0.0);
  EXPECT_DOUBLE_EQ(
      model.StateProbability(kTitle, history, MakeValueSet({"x"}),
                             Interval(2005, 2001)),
      0.0);
}

}  // namespace
}  // namespace maroon
