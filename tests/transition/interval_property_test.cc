#include <gtest/gtest.h>

#include "common/random.h"
#include "transition/transition_model.h"

namespace maroon {
namespace {

const Attribute kAttr = "A";

TransitionModel RandomModel(Random& rng) {
  static const std::vector<Value> kValues = {"a", "b", "c", "d"};
  ProfileSet profiles;
  const int entities = static_cast<int>(rng.UniformInt(2, 5));
  for (int e = 0; e < entities; ++e) {
    EntityProfile p("e" + std::to_string(e), "E");
    TemporalSequence& seq = p.sequence(kAttr);
    TimePoint t = static_cast<TimePoint>(rng.UniformInt(2000, 2004));
    ValueSet previous;
    const int spells = static_cast<int>(rng.UniformInt(2, 5));
    for (int i = 0; i < spells; ++i) {
      ValueSet values;
      while (values.empty() || values == previous) {
        values = MakeValueSet({kValues[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(kValues.size()) - 1))]});
      }
      const TimePoint end = static_cast<TimePoint>(t + rng.UniformInt(0, 4));
      EXPECT_TRUE(seq.Append(Triple(t, end, values)).ok());
      previous = values;
      t = static_cast<TimePoint>(end + rng.UniformInt(1, 3));
    }
    profiles.push_back(std::move(p));
  }
  return TransitionModel::Train(profiles, {kAttr});
}

class IntervalProbabilityProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IntervalProbabilityProperty, SingletonIntervalsReduceToSetProbability) {
  Random rng(GetParam());
  const TransitionModel model = RandomModel(rng);
  static const std::vector<Value> kValues = {"a", "b", "c", "d", "zz"};
  for (int trial = 0; trial < 20; ++trial) {
    const ValueSet from = MakeValueSet({kValues[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kValues.size()) - 1))]});
    const ValueSet to = MakeValueSet({kValues[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kValues.size()) - 1))]});
    const TimePoint t1 = static_cast<TimePoint>(rng.UniformInt(2000, 2015));
    const TimePoint t2 =
        static_cast<TimePoint>(t1 + rng.UniformInt(1, 10));
    // Forward singleton pair: exactly one Δt = t2 - t1 term.
    EXPECT_NEAR(model.IntervalProbability(kAttr, from, to, Interval(t1, t1),
                                          Interval(t2, t2)),
                model.SetProbability(kAttr, from, to, t2 - t1), 1e-12)
        << "seed " << GetParam() << " trial " << trial;
    // Reversed singleton pair: one backward term Pr(to, from, Δt).
    EXPECT_NEAR(model.IntervalProbability(kAttr, from, to, Interval(t2, t2),
                                          Interval(t1, t1)),
                model.SetProbability(kAttr, to, from, t2 - t1), 1e-12);
  }
}

TEST_P(IntervalProbabilityProperty, BruteForcePairAverageMatches) {
  Random rng(GetParam() + 500);
  const TransitionModel model = RandomModel(rng);
  for (int trial = 0; trial < 5; ++trial) {
    const ValueSet from = MakeValueSet({"a"});
    const ValueSet to = MakeValueSet({"b", "c"});
    const TimePoint b1 = static_cast<TimePoint>(rng.UniformInt(2000, 2010));
    const Interval i1(b1, static_cast<TimePoint>(b1 + rng.UniformInt(0, 4)));
    const TimePoint b2 = static_cast<TimePoint>(rng.UniformInt(2000, 2015));
    const Interval i2(b2, static_cast<TimePoint>(b2 + rng.UniformInt(0, 4)));

    // Literal Eq. 13 via the explicit double loop.
    double total = 0.0;
    for (TimePoint t = i1.begin; t <= i1.end; ++t) {
      for (TimePoint u = i2.begin; u <= i2.end; ++u) {
        if (u > t) {
          total += model.SetProbability(kAttr, from, to, u - t);
        } else if (u < t) {
          total += model.SetProbability(kAttr, to, from, t - u);
        }
      }
    }
    const double expected =
        total / static_cast<double>(i1.Length() * i2.Length());
    EXPECT_NEAR(model.IntervalProbability(kAttr, from, to, i1, i2), expected,
                1e-12)
        << "seed " << GetParam() << " i1=" << i1.ToString()
        << " i2=" << i2.ToString();
  }
}

TEST_P(IntervalProbabilityProperty, ProbabilitiesBounded) {
  Random rng(GetParam() + 900);
  const TransitionModel model = RandomModel(rng);
  for (int trial = 0; trial < 10; ++trial) {
    const ValueSet from = MakeValueSet({"a", "d"});
    const ValueSet to = MakeValueSet({"b"});
    const Interval i1(2000, static_cast<TimePoint>(rng.UniformInt(2000, 2006)));
    const Interval i2(2003, static_cast<TimePoint>(rng.UniformInt(2003, 2012)));
    const double p = model.IntervalProbability(kAttr, from, to, i1, i2);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalProbabilityProperty,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace maroon
