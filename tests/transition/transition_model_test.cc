#include "transition/transition_model.h"

#include <gtest/gtest.h>

#include <memory>

namespace maroon {
namespace {

const Attribute kTitle = "Title";

EntityProfile MakeTitleProfile(
    const std::string& id,
    std::initializer_list<std::tuple<TimePoint, TimePoint, Value>> spells) {
  EntityProfile p(id, id);
  TemporalSequence& seq = p.sequence(kTitle);
  for (const auto& [b, e, v] : spells) {
    EXPECT_TRUE(seq.Append(Triple(b, e, MakeValueSet({v}))).ok());
  }
  return p;
}

/// Figure 1's two profiles, reconstructed so that sliding a Δt=3 window
/// produces exactly the counts of Table 4: David contributes (E,M)=3 and
/// (M,M)=4; Tom contributes (E,A)=1, (E,M)=1, (A,M)=1.
ProfileSet Figure1Profiles() {
  ProfileSet profiles;
  profiles.push_back(MakeTitleProfile(
      "David", {{2000, 2002, "Engineer"}, {2003, 2009, "Manager"}}));
  profiles.push_back(MakeTitleProfile("Tom", {{2000, 2001, "Engineer"},
                                              {2002, 2003, "Analyst"},
                                              {2004, 2005, "Manager"}}));
  return profiles;
}

TEST(TransitionModelTest, AlgorithmOneReproducesTable4) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  const TransitionTable* t3 = model.table(kTitle, 3);
  ASSERT_NE(t3, nullptr);
  EXPECT_EQ(t3->Count("Engineer", "Manager"), 4);
  EXPECT_EQ(t3->Count("Manager", "Manager"), 4);
  EXPECT_EQ(t3->Count("Engineer", "Analyst"), 1);
  EXPECT_EQ(t3->Count("Analyst", "Manager"), 1);
  EXPECT_EQ(t3->Total(), 10);
}

TEST(TransitionModelTest, ExampleFourDeltaTransitions) {
  // Example 4: Φ_David[Title] at Δt = 3 exhibits exactly the transitions
  // (Engineer, Manager) and (Manager, Manager).
  ProfileSet david{MakeTitleProfile(
      "David", {{2000, 2002, "Engineer"}, {2003, 2009, "Manager"}})};
  const TransitionModel model = TransitionModel::Train(david, {kTitle});
  const TransitionTable* t3 = model.table(kTitle, 3);
  ASSERT_NE(t3, nullptr);
  EXPECT_EQ(t3->NumEntries(), 2u);
  EXPECT_GT(t3->Count("Engineer", "Manager"), 0);
  EXPECT_GT(t3->Count("Manager", "Manager"), 0);
}

TEST(TransitionModelTest, EquationOneConditionalProbabilities) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Engineer", "Manager", 3), 0.8);
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Engineer", "Analyst", 3), 0.2);
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Manager", "Manager", 3), 1.0);
}

TEST(TransitionModelTest, EquationTwoBoundaries) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  // Δt = 0 -> 1.0 by definition.
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Engineer", "Manager", 0), 1.0);
  // L = 10 (David's lifespan); Δt >= L clamps to L-1 = 9.
  EXPECT_EQ(model.MaxLifespan(kTitle), 10);
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Engineer", "Manager", 25),
                   model.Probability(kTitle, "Engineer", "Manager", 9));
}

TransitionModelOptions LiteralOptions() {
  // The paper's Eq. 3-8 without the sparse-table "rare" cap.
  TransitionModelOptions options;
  options.cap_unseen_by_support = false;
  return options;
}

TEST(TransitionModelTest, SmoothingCase1UnseenPairBothValuesKnown) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle}, LiteralOptions());
  // (Analyst, Analyst) at Δt=3: Analyst occurs as origin and as
  // destination, but the pair is unseen -> min row probability of Analyst.
  // Analyst's only outgoing transition is (Analyst, Manager) with prob 1.
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Analyst", "Analyst", 3), 1.0);
}

TEST(TransitionModelTest, SmoothingCase2UnseenDestination) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle}, LiteralOptions());
  // (Engineer, CEO): CEO never appears -> min row probability of Engineer.
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Engineer", "CEO", 3), 0.2);
}

TEST(TransitionModelTest, SupportCapBoundsUnseenTransitions) {
  // Default options: a singleton row (Analyst -> Manager only) would assign
  // probability 1.0 to the *unseen* (Analyst, Analyst); the support cap
  // bounds it by 1/(RowSum + 1) = 1/2. Dense evidence stays below its cap:
  // Engineer's row minimum 0.2 is capped by 1/(5+1).
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Analyst", "Analyst", 3), 0.5);
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Engineer", "CEO", 3),
                   1.0 / 6.0);
  // Seen transitions are never capped.
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Manager", "Manager", 3), 1.0);
}

TEST(TransitionModelTest, SmoothingCase3UnseenOrigin) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  // (CEO, Manager): prior of Manager = column sum / total = 9/10.
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "CEO", "Manager", 3), 0.9);
}

TEST(TransitionModelTest, SmoothingCase4Recurrence) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  // (CEO, CEO): both unseen, equal -> global recurrence 4/10.
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "CEO", "CEO", 3), 0.4);
}

TEST(TransitionModelTest, SmoothingCase4Change) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle}, LiteralOptions());
  // (CEO, VP): both unseen, different -> expected-change probability.
  EXPECT_NEAR(model.Probability(kTitle, "CEO", "VP", 3), 4.4 / 6.0, 1e-12);
  // With the default support cap the same query is bounded by
  // 1/(DiffTotal + 1) = 1/7.
  const TransitionModel capped =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  EXPECT_NEAR(capped.Probability(kTitle, "CEO", "VP", 3), 1.0 / 7.0, 1e-12);
}

TEST(TransitionModelTest, UntrainedAttributeGivesZero) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  EXPECT_DOUBLE_EQ(model.Probability("Location", "a", "b", 3), 0.0);
  EXPECT_FALSE(model.HasAttribute("Location"));
  EXPECT_EQ(model.MaxLifespan("Location"), 0);
  EXPECT_EQ(model.table("Location", 3), nullptr);
}

TEST(TransitionModelTest, DeltasCoverAllObservedGaps) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  const std::vector<int64_t> deltas = model.DeltasFor(kTitle);
  ASSERT_FALSE(deltas.empty());
  EXPECT_EQ(deltas.front(), 1);
  // David's lifespan 10 -> max Δt = 9.
  EXPECT_EQ(deltas.back(), 9);
}

TEST(TransitionModelTest, ValueFrequencyIsInstantWeighted) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  // Engineer: David 3 instants + Tom 2 instants.
  EXPECT_EQ(model.ValueFrequency(kTitle, "Engineer"), 5);
  EXPECT_EQ(model.ValueFrequency(kTitle, "Analyst"), 2);
  EXPECT_EQ(model.ValueFrequency(kTitle, "CEO"), 0);
}

TEST(TransitionModelTest, LowFrequencyValuesFallBackToCase4) {
  TransitionModelOptions options;
  options.min_value_frequency = 3;  // Analyst (2 instants) is "rare"
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle}, options);
  // (Engineer, Analyst) would be Eq. 1 = 0.2; with Analyst rare the pair is
  // treated as (seen, unseen) -> case 2 -> min row prob of Engineer = 0.2.
  // (Analyst, Manager) becomes (unseen, seen) -> case 3 prior = 0.9.
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Analyst", "Manager", 3), 0.9);
  // (Analyst, Analyst) -> both treated unseen, equal -> recurrence 0.4.
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Analyst", "Analyst", 3), 0.4);
}

TEST(TransitionModelTest, ValueMapperGeneralizesBeforeCounting) {
  TransitionModelOptions options;
  auto mapper = std::make_shared<TableValueMapper>();
  mapper->AddMapping(kTitle, "Engineer", "junior");
  mapper->AddMapping(kTitle, "Analyst", "junior");
  mapper->AddMapping(kTitle, "Manager", "senior");
  options.mapper = mapper;
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle}, options);
  const TransitionTable* t3 = model.table(kTitle, 3);
  ASSERT_NE(t3, nullptr);
  // Raw names are mapped at query time too.
  EXPECT_GT(model.Probability(kTitle, "Engineer", "Manager", 3), 0.0);
  EXPECT_DOUBLE_EQ(model.Probability(kTitle, "Engineer", "Manager", 3),
                   model.Probability(kTitle, "Analyst", "Manager", 3));
  EXPECT_TRUE(t3->HasOrigin("junior"));
  EXPECT_FALSE(t3->HasOrigin("Engineer"));
}

TEST(TransitionModelTest, SetProbabilityIsEquationTwelve) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  // Pr({Engineer}, {Analyst, Manager}, 3) = (0.2 + 0.8)/2.
  EXPECT_DOUBLE_EQ(
      model.SetProbability(kTitle, MakeValueSet({"Engineer"}),
                           MakeValueSet({"Analyst", "Manager"}), 3),
      0.5);
  // Max over the origin set: {Engineer, Manager} -> Manager: max(0.8, 1.0).
  EXPECT_DOUBLE_EQ(
      model.SetProbability(kTitle, MakeValueSet({"Engineer", "Manager"}),
                           MakeValueSet({"Manager"}), 3),
      1.0);
  EXPECT_DOUBLE_EQ(model.SetProbability(kTitle, {}, MakeValueSet({"x"}), 3),
                   0.0);
}

TEST(TransitionModelTest, IntervalProbabilityMatchesManualEquationThirteen) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  // I = [2003, 2004], I' = [2006, 2006]: pairs (2003,2006) Δ3, (2004,2006)
  // Δ2 — both forward. |I||I'| = 2.
  const double expected =
      (model.SetProbability(kTitle, MakeValueSet({"Manager"}),
                            MakeValueSet({"Manager"}), 3) +
       model.SetProbability(kTitle, MakeValueSet({"Manager"}),
                            MakeValueSet({"Manager"}), 2)) /
      2.0;
  EXPECT_NEAR(model.IntervalProbability(kTitle, MakeValueSet({"Manager"}),
                                        MakeValueSet({"Manager"}),
                                        Interval(2003, 2004),
                                        Interval(2006, 2006)),
              expected, 1e-12);
}

TEST(TransitionModelTest, IntervalProbabilityBackwardTerms) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  // I after I': only backward terms Pr(V', V, t - t') contribute.
  const double backward = model.IntervalProbability(
      kTitle, MakeValueSet({"Manager"}), MakeValueSet({"Engineer"}),
      Interval(2006, 2006), Interval(2003, 2003));
  EXPECT_NEAR(backward,
              model.SetProbability(kTitle, MakeValueSet({"Engineer"}),
                                   MakeValueSet({"Manager"}), 3),
              1e-12);
}

TEST(TransitionModelTest, ZeroDeltaTermsOptional) {
  // Literal Eq. 13 omits t == t' pairs; the option counts them as 1.
  TransitionModelOptions with_zero;
  with_zero.include_zero_delta_terms = true;
  const ProfileSet profiles = Figure1Profiles();
  const TransitionModel literal = TransitionModel::Train(profiles, {kTitle});
  const TransitionModel inclusive =
      TransitionModel::Train(profiles, {kTitle}, with_zero);
  const Interval same(2003, 2003);
  EXPECT_DOUBLE_EQ(
      literal.IntervalProbability(kTitle, MakeValueSet({"Manager"}),
                                  MakeValueSet({"Manager"}), same, same),
      0.0);
  EXPECT_DOUBLE_EQ(
      inclusive.IntervalProbability(kTitle, MakeValueSet({"Manager"}),
                                    MakeValueSet({"Manager"}), same, same),
      1.0);
}

TEST(TransitionModelTest, SequenceToStateProbabilityIsEquationFourteen) {
  const TransitionModel model =
      TransitionModel::Train(Figure1Profiles(), {kTitle});
  TemporalSequence history;
  ASSERT_TRUE(
      history.Append(Triple(2000, 2002, MakeValueSet({"Engineer"}))).ok());
  ASSERT_TRUE(
      history.Append(Triple(2003, 2009, MakeValueSet({"Manager"}))).ok());
  const ValueSet to = MakeValueSet({"Manager"});
  const Interval state(2011, 2011);
  const double expected =
      (model.IntervalProbability(kTitle, MakeValueSet({"Engineer"}), to,
                                 Interval(2000, 2002), state) +
       model.IntervalProbability(kTitle, MakeValueSet({"Manager"}), to,
                                 Interval(2003, 2009), state)) /
      2.0;
  EXPECT_NEAR(
      model.SequenceToStateProbability(kTitle, history, to, state),
      expected, 1e-12);
  EXPECT_DOUBLE_EQ(model.SequenceToStateProbability(kTitle, TemporalSequence(),
                                                    to, state),
                   0.0);
}

TEST(TransitionModelTest, PromotionMoreLikelyThanDemotionAfterYears) {
  // The discriminative behaviour behind Example 1: a long-time Manager is
  // far more likely to become Director than IT Contractor.
  ProfileSet profiles;
  for (int i = 0; i < 5; ++i) {
    profiles.push_back(MakeTitleProfile(
        "p" + std::to_string(i),
        {{2000, 2002, "Engineer"}, {2003, 2010, "Manager"},
         {2011, 2014, "Director"}}));
  }
  // Diversify the Manager row so the Eq. 3-4 minimum is informative.
  profiles.push_back(MakeTitleProfile(
      "r", {{2000, 2008, "Manager"}, {2009, 2014, "Consultant"}}));
  profiles.push_back(MakeTitleProfile(
      "q", {{2000, 2001, "IT Contractor"}, {2002, 2014, "Engineer"}}));
  const TransitionModel model = TransitionModel::Train(profiles, {kTitle});
  const double to_director =
      model.Probability(kTitle, "Manager", "Director", 8);
  const double to_contractor =
      model.Probability(kTitle, "Manager", "IT Contractor", 8);
  EXPECT_GT(to_director, to_contractor);
  EXPECT_GT(to_director, 0.2);
}

}  // namespace
}  // namespace maroon
