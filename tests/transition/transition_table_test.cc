#include "transition/transition_table.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

// The paper's Table 4 (obtained from Figure 1 with Δt = 3).
TransitionTable Table4() {
  TransitionTable t;
  t.Add("Engineer", "Manager", 4);
  t.Add("Manager", "Manager", 4);
  t.Add("Engineer", "Analyst", 1);
  t.Add("Analyst", "Manager", 1);
  t.Finalize();
  return t;
}

TEST(TransitionTableTest, CountsAndAggregates) {
  const TransitionTable t = Table4();
  EXPECT_EQ(t.Count("Engineer", "Manager"), 4);
  EXPECT_EQ(t.Count("Engineer", "Analyst"), 1);
  EXPECT_EQ(t.Count("Engineer", "Engineer"), 0);
  EXPECT_EQ(t.RowSum("Engineer"), 5);
  EXPECT_EQ(t.RowSum("Manager"), 4);
  EXPECT_EQ(t.RowSum("Nobody"), 0);
  EXPECT_EQ(t.ColumnSum("Manager"), 9);
  EXPECT_EQ(t.ColumnSum("Analyst"), 1);
  EXPECT_EQ(t.Total(), 10);
  EXPECT_EQ(t.SelfTotal(), 4);
  EXPECT_EQ(t.DiffTotal(), 6);
  EXPECT_EQ(t.NumEntries(), 4u);
}

TEST(TransitionTableTest, AddAccumulates) {
  TransitionTable t;
  t.Add("a", "b", 2);
  t.Add("a", "b", 3);
  t.Finalize();
  EXPECT_EQ(t.Count("a", "b"), 5);
}

TEST(TransitionTableTest, OriginAndDestinationMembership) {
  const TransitionTable t = Table4();
  EXPECT_TRUE(t.HasOrigin("Engineer"));
  EXPECT_TRUE(t.HasOrigin("Analyst"));
  EXPECT_FALSE(t.HasOrigin("CEO"));
  EXPECT_TRUE(t.HasDestination("Manager"));
  EXPECT_TRUE(t.HasDestination("Analyst"));
  // Engineer never appears as a destination in Table 4.
  EXPECT_FALSE(t.HasDestination("Engineer"));
}

TEST(TransitionTableTest, ConditionalProbabilityIsEquationOne) {
  const TransitionTable t = Table4();
  EXPECT_DOUBLE_EQ(t.ConditionalProbability("Engineer", "Manager"), 0.8);
  EXPECT_DOUBLE_EQ(t.ConditionalProbability("Engineer", "Analyst"), 0.2);
  EXPECT_DOUBLE_EQ(t.ConditionalProbability("Manager", "Manager"), 1.0);
  EXPECT_DOUBLE_EQ(t.ConditionalProbability("Nobody", "Manager"), 0.0);
}

TEST(TransitionTableTest, MinRowProbability) {
  const TransitionTable t = Table4();
  EXPECT_DOUBLE_EQ(t.MinRowProbability("Engineer"), 0.2);
  EXPECT_DOUBLE_EQ(t.MinRowProbability("Manager"), 1.0);
  EXPECT_DOUBLE_EQ(t.MinRowProbability("Nobody"), 0.0);
}

TEST(TransitionTableTest, PriorProbabilityIsEquationFive) {
  const TransitionTable t = Table4();
  EXPECT_DOUBLE_EQ(t.PriorProbability("Manager"), 0.9);
  EXPECT_DOUBLE_EQ(t.PriorProbability("Analyst"), 0.1);
  EXPECT_DOUBLE_EQ(t.PriorProbability("CEO"), 0.0);
}

TEST(TransitionTableTest, RecurrenceProbabilityIsEquationSix) {
  EXPECT_DOUBLE_EQ(Table4().RecurrenceProbability(), 0.4);
}

TEST(TransitionTableTest, ExpectedChangeProbabilityIsEquationEight) {
  // E(X) = 0.8*4 + 0.2*1 + 1.0*1 = 4.4 over DiffTotal = 6.
  EXPECT_NEAR(Table4().ExpectedChangeProbability(), 4.4 / 6.0, 1e-12);
}

TEST(TransitionTableTest, EmptyTable) {
  TransitionTable t;
  t.Finalize();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Total(), 0);
  EXPECT_DOUBLE_EQ(t.RecurrenceProbability(), 0.0);
  EXPECT_DOUBLE_EQ(t.ExpectedChangeProbability(), 0.0);
  EXPECT_DOUBLE_EQ(t.PriorProbability("x"), 0.0);
}

TEST(TransitionTableTest, AllSelfTransitionsHaveZeroChangeProbability) {
  TransitionTable t;
  t.Add("a", "a", 5);
  t.Finalize();
  EXPECT_EQ(t.DiffTotal(), 0);
  EXPECT_DOUBLE_EQ(t.ExpectedChangeProbability(), 0.0);
  EXPECT_DOUBLE_EQ(t.RecurrenceProbability(), 1.0);
}

TEST(TransitionTableTest, EntriesAreOrderedAndComplete) {
  const auto entries = Table4().Entries();
  ASSERT_EQ(entries.size(), 4u);
  // std::map ordering: Analyst < Engineer < Manager.
  EXPECT_EQ(std::get<0>(entries[0]), "Analyst");
  EXPECT_EQ(std::get<0>(entries[1]), "Engineer");
  EXPECT_EQ(std::get<1>(entries[1]), "Analyst");
  EXPECT_EQ(std::get<2>(entries[1]), 1);
}

}  // namespace
}  // namespace maroon
