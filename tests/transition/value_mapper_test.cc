#include "transition/value_mapper.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TEST(IdentityValueMapperTest, PassesThrough) {
  IdentityValueMapper mapper;
  EXPECT_EQ(mapper.Map("Title", "Engineer"), "Engineer");
  EXPECT_EQ(mapper.Map("Org", ""), "");
}

TEST(TableValueMapperTest, MapsKnownValues) {
  TableValueMapper mapper;
  mapper.AddMapping("Affiliation", "University of Oxford", "university");
  mapper.AddMapping("Affiliation", "Quest Software", "industry");
  EXPECT_EQ(mapper.Map("Affiliation", "University of Oxford"), "university");
  EXPECT_EQ(mapper.Map("Affiliation", "Quest Software"), "industry");
  EXPECT_EQ(mapper.NumMappings("Affiliation"), 2u);
}

TEST(TableValueMapperTest, UnmappedValuesPassThroughWithoutDefault) {
  TableValueMapper mapper;
  mapper.AddMapping("Affiliation", "A", "cat");
  EXPECT_EQ(mapper.Map("Affiliation", "B"), "B");
  EXPECT_EQ(mapper.Map("OtherAttr", "A"), "A");
}

TEST(TableValueMapperTest, DefaultCategoryCatchesUnmapped) {
  TableValueMapper mapper;
  mapper.AddMapping("Affiliation", "A", "cat");
  mapper.SetDefaultCategory("Affiliation", "other");
  EXPECT_EQ(mapper.Map("Affiliation", "A"), "cat");
  EXPECT_EQ(mapper.Map("Affiliation", "B"), "other");
  // The default is per-attribute.
  EXPECT_EQ(mapper.Map("Title", "B"), "B");
}

TEST(TableValueMapperTest, MappingsArePerAttribute) {
  TableValueMapper mapper;
  mapper.AddMapping("A1", "x", "one");
  mapper.AddMapping("A2", "x", "two");
  EXPECT_EQ(mapper.Map("A1", "x"), "one");
  EXPECT_EQ(mapper.Map("A2", "x"), "two");
  EXPECT_EQ(mapper.NumMappings("A3"), 0u);
}

TEST(TableValueMapperTest, LaterMappingOverwrites) {
  TableValueMapper mapper;
  mapper.AddMapping("A", "x", "first");
  mapper.AddMapping("A", "x", "second");
  EXPECT_EQ(mapper.Map("A", "x"), "second");
  EXPECT_EQ(mapper.NumMappings("A"), 1u);
}

}  // namespace
}  // namespace maroon
