#include "transition/joint_transition_model.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/career_model.h"

namespace maroon {
namespace {

EntityProfile TwoAttributeProfile(
    const std::string& id,
    std::initializer_list<std::tuple<TimePoint, TimePoint, Value, Value>>
        spells) {
  EntityProfile p(id, id);
  TemporalSequence& org = p.sequence("Org");
  TemporalSequence& title = p.sequence("Title");
  for (const auto& [b, e, o, t] : spells) {
    EXPECT_TRUE(org.Append(Triple(b, e, MakeValueSet({o}))).ok());
    EXPECT_TRUE(title.Append(Triple(b, e, MakeValueSet({t}))).ok());
  }
  return p;
}

TEST(JointTransitionModelTest, ComposeIsInjectiveOnSeparatedValues) {
  EXPECT_NE(JointTransitionModel::Compose("A", "B"),
            JointTransitionModel::Compose("B", "A"));
  EXPECT_EQ(JointTransitionModel::Compose("A", "B"),
            JointTransitionModel::Compose("A", "B"));
}

TEST(JointTransitionModelTest, LearnsCorrelatedMoves) {
  // Org and Title always change together: Acme/Engineer -> Beta/Manager.
  ProfileSet profiles;
  for (int i = 0; i < 4; ++i) {
    profiles.push_back(TwoAttributeProfile(
        "p" + std::to_string(i),
        {{2000, 2004, "Acme", "Engineer"}, {2005, 2009, "Beta", "Manager"}}));
  }
  const JointTransitionModel joint =
      JointTransitionModel::Train(profiles, "Org", "Title");

  // The correlated move is likely...
  const double together =
      joint.Probability("Acme", "Engineer", "Beta", "Manager", 5);
  // ... while the decoupled combination (new org, old title) was never seen.
  const double decoupled =
      joint.Probability("Acme", "Engineer", "Beta", "Engineer", 5);
  EXPECT_GT(together, decoupled);
  EXPECT_GT(together, 0.3);
}

TEST(JointTransitionModelTest, MissingAttributeInstantsAreSkipped) {
  ProfileSet profiles;
  EntityProfile p("p", "p");
  (void)p.sequence("Org").Append(Triple(2000, 2005, MakeValueSet({"Acme"})));
  // Title only defined for part of the period.
  (void)p.sequence("Title").Append(
      Triple(2003, 2005, MakeValueSet({"Engineer"})));
  profiles.push_back(std::move(p));
  const JointTransitionModel joint =
      JointTransitionModel::Train(profiles, "Org", "Title");
  // The compound sequence covers only [2003, 2005] -> max Δt = 2.
  EXPECT_EQ(joint.model().MaxLifespan(joint.joint_attribute()), 3);
}

TEST(JointTransitionModelTest, EmptyProfilesGiveEmptyModel) {
  const JointTransitionModel joint =
      JointTransitionModel::Train({}, "Org", "Title");
  EXPECT_DOUBLE_EQ(joint.Probability("a", "b", "c", "d", 1), 0.0);
}

TEST(CompareJointVsIndependentTest, JointWinsOnCorrelatedWorld) {
  // Generate correlated careers; train joint + marginal models on half,
  // evaluate the likelihood of the other half.
  Random rng(41);
  CareerModel career(CareerModelOptions{}, rng);
  ProfileSet train, held_out;
  for (int i = 0; i < 300; ++i) {
    Random entity_rng = rng.Fork();
    EntityProfile p =
        career.GenerateProfile("e" + std::to_string(i), "N", entity_rng);
    (i % 2 == 0 ? train : held_out).push_back(std::move(p));
  }
  const JointTransitionModel joint =
      JointTransitionModel::Train(train, kAttrOrganization, kAttrTitle);
  const TransitionModel marginals =
      TransitionModel::Train(train, {kAttrOrganization, kAttrTitle});

  const CorrelationReport report =
      CompareJointVsIndependent(joint, marginals, held_out);
  ASSERT_GT(report.transitions_scored, 100u);
  // Org and Title change together ~80% of the time, so modeling them
  // jointly must beat the independence assumption on held-out data.
  EXPECT_GT(report.Gain(), 0.0);
}

TEST(CompareJointVsIndependentTest, EmptyHeldOutIsZero) {
  const JointTransitionModel joint =
      JointTransitionModel::Train({}, "A", "B");
  const TransitionModel marginals;
  const CorrelationReport report =
      CompareJointVsIndependent(joint, marginals, {});
  EXPECT_EQ(report.transitions_scored, 0u);
  EXPECT_DOUBLE_EQ(report.Gain(), 0.0);
}

}  // namespace
}  // namespace maroon
