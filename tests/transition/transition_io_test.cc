#include "transition/transition_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/csv.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kTitle;

TransitionModel SmallModel() {
  return TransitionModel::Train(testing::CareerTrainingProfiles(), {kTitle});
}

TEST(TransitionIoTest, CsvHasHeaderAndEntries) {
  const TransitionModel model = SmallModel();
  const std::string csv = TransitionTablesToCsv(model, kTitle);
  auto rows = ParseCsv(csv);
  ASSERT_TRUE(rows.ok());
  ASSERT_GT(rows->size(), 10u);
  EXPECT_EQ((*rows)[0],
            (std::vector<std::string>{"attribute", "delta", "from", "to",
                                      "count", "probability"}));
  // Every data row names the attribute and carries 6 columns.
  for (size_t i = 1; i < rows->size(); ++i) {
    ASSERT_EQ((*rows)[i].size(), 6u) << "row " << i;
    EXPECT_EQ((*rows)[i][0], kTitle);
  }
}

TEST(TransitionIoTest, RowsMatchModelCounts) {
  const TransitionModel model = SmallModel();
  const std::string csv = TransitionTablesToCsv(model, kTitle);
  auto rows = ParseCsv(csv);
  ASSERT_TRUE(rows.ok());
  size_t checked = 0;
  for (size_t i = 1; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    const int64_t delta = std::stoll(row[1]);
    const TransitionTable* table = model.table(kTitle, delta);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(std::to_string(table->Count(row[2], row[3])), row[4]);
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(TransitionIoTest, UnknownAttributeGivesHeaderOnly) {
  const TransitionModel model = SmallModel();
  auto rows = ParseCsv(TransitionTablesToCsv(model, "Nothing"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(TransitionIoTest, WriteToFile) {
  const TransitionModel model = SmallModel();
  const std::string path =
      ::testing::TempDir() + "/maroon_transitions_test.csv";
  ASSERT_TRUE(WriteTransitionTablesCsv(model, kTitle, path).ok());
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(rows->size(), 10u);
  std::remove(path.c_str());
}

TEST(TransitionIoTest, WriteToBadPathFails) {
  const TransitionModel model = SmallModel();
  EXPECT_EQ(
      WriteTransitionTablesCsv(model, kTitle, "/nonexistent/dir/x.csv")
          .code(),
      StatusCode::kIOError);
}

}  // namespace
}  // namespace maroon
