#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "transition/transition_model.h"

namespace maroon {
namespace {

const Attribute kAttr = "A";

/// Brute force per Definition 2: slide a window of size Δt over every
/// instant and count (v, v') pairs with v in Values(t), v' in Values(t+Δt).
std::map<std::pair<Value, Value>, int64_t> SlidingWindowCounts(
    const TemporalSequence& seq, int64_t delta) {
  std::map<std::pair<Value, Value>, int64_t> counts;
  const auto earliest = seq.EarliestTime();
  const auto latest = seq.LatestTime();
  if (!earliest || !latest) return counts;
  for (TimePoint t = *earliest; t + delta <= *latest; ++t) {
    const ValueSet from = seq.ValuesAt(t);
    const ValueSet to = seq.ValuesAt(static_cast<TimePoint>(t + delta));
    for (const Value& v : from) {
      for (const Value& w : to) {
        ++counts[{v, w}];
      }
    }
  }
  return counts;
}

/// Generates a random canonical sequence: spells of random length with
/// random (possibly multi-) value sets, separated by random gaps.
TemporalSequence RandomSequence(Random& rng) {
  static const std::vector<Value> kValues = {"a", "b", "c", "d", "e"};
  TemporalSequence seq;
  TimePoint t = static_cast<TimePoint>(rng.UniformInt(2000, 2005));
  ValueSet previous;
  const int spells = static_cast<int>(rng.UniformInt(1, 6));
  for (int i = 0; i < spells; ++i) {
    ValueSet values;
    while (values.empty() || values == previous) {
      std::vector<Value> picked;
      const int n = static_cast<int>(rng.UniformInt(1, 2));
      for (int k = 0; k < n; ++k) {
        picked.push_back(kValues[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(kValues.size()) - 1))]);
      }
      values = MakeValueSet(std::move(picked));
    }
    const TimePoint end =
        static_cast<TimePoint>(t + rng.UniformInt(0, 6));
    EXPECT_TRUE(seq.Append(Triple(t, end, values)).ok());
    previous = values;
    t = static_cast<TimePoint>(end + rng.UniformInt(1, 4));
  }
  return seq;
}

class TransitionCountProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransitionCountProperty,
       PropositionOneMatchesSlidingWindowOnRandomSequences) {
  Random rng(GetParam());
  ProfileSet profiles;
  EntityProfile p("e", "E");
  p.sequence(kAttr) = RandomSequence(rng);
  const TemporalSequence& seq = p.sequence(kAttr);
  profiles.push_back(p);

  const TransitionModel model = TransitionModel::Train(profiles, {kAttr});
  const int64_t max_delta = seq.Lifespan();
  for (int64_t delta = 1; delta < max_delta; ++delta) {
    const auto expected = SlidingWindowCounts(seq, delta);
    const TransitionTable* table = model.table(kAttr, delta);
    int64_t expected_total = 0;
    for (const auto& [pair, count] : expected) {
      expected_total += count;
      ASSERT_NE(table, nullptr)
          << "missing table for delta " << delta << " seed " << GetParam();
      EXPECT_EQ(table->Count(pair.first, pair.second), count)
          << "pair (" << pair.first << ", " << pair.second << ") delta "
          << delta << " seed " << GetParam();
    }
    if (table != nullptr) {
      EXPECT_EQ(table->Total(), expected_total)
          << "delta " << delta << " seed " << GetParam();
    } else {
      EXPECT_EQ(expected_total, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TransitionCountProperty,
                         ::testing::Range<uint64_t>(1, 41));

class ProbabilityAxiomsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProbabilityAxiomsProperty, ProbabilitiesAreWellFormed) {
  Random rng(GetParam());
  ProfileSet profiles;
  for (int i = 0; i < 3; ++i) {
    EntityProfile p("e" + std::to_string(i), "E");
    p.sequence(kAttr) = RandomSequence(rng);
    profiles.push_back(std::move(p));
  }
  const TransitionModel model = TransitionModel::Train(profiles, {kAttr});

  static const std::vector<Value> kQueryValues = {"a", "b", "c", "d", "e",
                                                  "zz"};
  for (int64_t delta = 0; delta <= model.MaxLifespan(kAttr) + 2; ++delta) {
    for (const Value& v : kQueryValues) {
      double row_known_sum = 0.0;
      const TransitionTable* table = model.table(kAttr, delta);
      for (const Value& w : kQueryValues) {
        const double p = model.Probability(kAttr, v, w, delta);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        if (delta > 0 && table != nullptr && table->Count(v, w) > 0) {
          row_known_sum += p;
        }
      }
      // Eq. 1 rows over observed entries never exceed 1.
      EXPECT_LE(row_known_sum, 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ProbabilityAxiomsProperty,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace maroon
