#include "transition/transition_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/time_types.h"
#include "core/value.h"
#include "transition/transition_model.h"

namespace maroon {
namespace {

const Attribute kTitle = "Title";

EntityProfile MakeTitleProfile(
    const std::string& id,
    std::initializer_list<std::tuple<TimePoint, TimePoint, Value>> spells) {
  EntityProfile p(id, id);
  TemporalSequence& seq = p.sequence(kTitle);
  for (const auto& [b, e, v] : spells) {
    EXPECT_TRUE(seq.Append(Triple(b, e, MakeValueSet({v}))).ok());
  }
  return p;
}

ProfileSet CareerProfiles() {
  ProfileSet profiles;
  profiles.push_back(MakeTitleProfile(
      "David", {{2000, 2002, "Engineer"}, {2003, 2009, "Manager"}}));
  profiles.push_back(MakeTitleProfile("Tom", {{2000, 2001, "Engineer"},
                                              {2002, 2003, "Analyst"},
                                              {2004, 2005, "Manager"}}));
  profiles.push_back(MakeTitleProfile("Ann", {{2001, 2004, "Analyst"},
                                              {2005, 2008, "Director"}}));
  return profiles;
}

// ----------------------------------------------------------- cache unit

TEST(TransitionProbabilityCacheTest, MissThenHitRoundTrips) {
  TransitionProbabilityCache cache(8);
  SetFingerprintBuilder from, to;
  from.Add("Engineer", true);
  to.Add("Manager", true);
  double value = -1.0;
  EXPECT_FALSE(
      cache.Lookup(1, from.fingerprint(), to.fingerprint(), &value));
  cache.Put(1, from.fingerprint(), to.fingerprint(), 0.625);
  ASSERT_TRUE(
      cache.Lookup(1, from.fingerprint(), to.fingerprint(), &value));
  EXPECT_EQ(value, 0.625);  // maroon-lint: allow(R003) — exact bits cached
}

TEST(TransitionProbabilityCacheTest, KeyIsOrderDependent) {
  TransitionProbabilityCache cache(8);
  SetFingerprintBuilder a, b;
  a.Add("Engineer", true);
  b.Add("Manager", true);
  cache.Put(7, a.fingerprint(), b.fingerprint(), 0.25);
  double value = -1.0;
  // (to, from) must be a distinct entry: Eq. 12 is not symmetric.
  EXPECT_FALSE(cache.Lookup(7, b.fingerprint(), a.fingerprint(), &value));
  ASSERT_TRUE(cache.Lookup(7, a.fingerprint(), b.fingerprint(), &value));
  EXPECT_EQ(value, 0.25);  // maroon-lint: allow(R003) — exact bits cached
}

TEST(TransitionProbabilityCacheTest, SaltSeparatesTables) {
  TransitionProbabilityCache cache(8);
  SetFingerprintBuilder a, b;
  a.Add("Engineer", true);
  b.Add("Manager", true);
  cache.Put(1, a.fingerprint(), b.fingerprint(), 0.5);
  double value = -1.0;
  EXPECT_FALSE(cache.Lookup(2, a.fingerprint(), b.fingerprint(), &value));
}

TEST(TransitionProbabilityCacheTest, FingerprintSeparatesFrequencyFlag) {
  SetFingerprintBuilder frequent, rare;
  frequent.Add("Engineer", true);
  rare.Add("Engineer", false);
  EXPECT_NE(frequent.fingerprint().a, rare.fingerprint().a);
}

TEST(TransitionProbabilityCacheTest, FingerprintSeparatesElementBoundaries) {
  SetFingerprintBuilder ab_c, a_bc;
  ab_c.Add("ab", true);
  ab_c.Add("c", true);
  a_bc.Add("a", true);
  a_bc.Add("bc", true);
  EXPECT_NE(ab_c.fingerprint().a, a_bc.fingerprint().a);
}

TEST(TransitionProbabilityCacheTest, ProbeWindowExhaustionDropsSilently) {
  // A 2-slot cache overflows quickly; Put must neither crash nor evict.
  TransitionProbabilityCache cache(1);
  for (int i = 0; i < 64; ++i) {
    SetFingerprintBuilder fp;
    fp.Add("v" + std::to_string(i), true);
    cache.Put(1, fp.fingerprint(), fp.fingerprint(), 0.5);
  }
  EXPECT_LE(cache.SizeForTest(), 2u);
}

TEST(TransitionProbabilityCacheTest, ConcurrentMixedReadWriteIsSafe) {
  TransitionProbabilityCache cache(12);
  ThreadPool pool(4);
  std::atomic<int> wrong_values{0};
  // 4 strands race inserts and lookups over 256 overlapping keys; any hit
  // must return the exact value every writer stores for that key.
  pool.ParallelFor(4096, 4, [&](int /*strand*/, size_t i) {
    const int key = static_cast<int>(i % 256);
    SetFingerprintBuilder fp;
    fp.Add("value" + std::to_string(key), key % 2 == 0);
    const double expected = static_cast<double>(key) / 256.0;
    cache.Put(9, fp.fingerprint(), fp.fingerprint(), expected);
    double got = -1.0;
    if (cache.Lookup(9, fp.fingerprint(), fp.fingerprint(), &got) &&
        got != expected) {  // maroon-lint: allow(R003) — exact bits cached
      wrong_values.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(wrong_values.load(), 0);
}

// -------------------------------------------- model-level equivalence

TEST(TransitionCacheModelTest, CachedMatchesUncachedExactly) {
  TransitionModelOptions cached_options;
  cached_options.cache_probabilities = true;
  TransitionModelOptions uncached_options;
  uncached_options.cache_probabilities = false;
  const TransitionModel cached =
      TransitionModel::Train(CareerProfiles(), {kTitle}, cached_options);
  const TransitionModel uncached =
      TransitionModel::Train(CareerProfiles(), {kTitle}, uncached_options);

  const std::vector<ValueSet> sets = {
      MakeValueSet({"Engineer"}), MakeValueSet({"Manager"}),
      MakeValueSet({"Analyst", "Director"}), MakeValueSet({"Unseen"})};
  const std::vector<Interval> intervals = {Interval(2000, 2002),
                                           Interval(2003, 2006),
                                           Interval(2001, 2008)};
  for (const ValueSet& from : sets) {
    for (const ValueSet& to : sets) {
      for (int64_t delta = 1; delta <= 6; ++delta) {
        // Query twice so the second cached pass exercises cache hits.
        const double u = uncached.SetProbability(kTitle, from, to, delta);
        EXPECT_EQ(cached.SetProbability(kTitle, from, to, delta), u);
        EXPECT_EQ(cached.SetProbability(kTitle, from, to, delta), u);
      }
      for (const Interval& fi : intervals) {
        for (const Interval& ti : intervals) {
          const double u =
              uncached.IntervalProbability(kTitle, from, to, fi, ti);
          EXPECT_EQ(cached.IntervalProbability(kTitle, from, to, fi, ti), u);
          EXPECT_EQ(cached.IntervalProbability(kTitle, from, to, fi, ti), u);
        }
      }
    }
  }
}

TEST(TransitionCacheModelTest, ShardedTrainingMatchesSerialSerialization) {
  // The serialized model is a total, canonical rendering of the learnt
  // state; byte equality proves 1-thread and 8-thread training build
  // identical tables, frequencies, and lifespans.
  ThreadPool::SetDefaultThreadCount(1);
  const TransitionModel serial =
      TransitionModel::Train(CareerProfiles(), {kTitle});
  ThreadPool::SetDefaultThreadCount(8);
  const TransitionModel sharded =
      TransitionModel::Train(CareerProfiles(), {kTitle});
  ThreadPool::SetDefaultThreadCount(1);
  EXPECT_EQ(serial.Serialize(), sharded.Serialize());
}

}  // namespace
}  // namespace maroon
