#include "similarity/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace maroon {
namespace {

std::vector<std::vector<std::string>> SmallCorpus() {
  return {
      {"quest", "software", "manager"},
      {"quest", "software", "director"},
      {"university", "of", "springfield"},
      {"vertex", "labs", "engineer"},
  };
}

TEST(TfIdfTest, FitCountsDocumentFrequencies) {
  TfIdfModel model;
  model.Fit(SmallCorpus());
  EXPECT_EQ(model.NumDocuments(), 4u);
  EXPECT_GT(model.VocabularySize(), 5u);
  // "quest" in 2 of 4 docs; rarer tokens get higher idf.
  EXPECT_GT(model.Idf("springfield"), model.Idf("quest"));
  // Unseen tokens get the maximal idf.
  EXPECT_GT(model.Idf("never-seen"), model.Idf("springfield"));
}

TEST(TfIdfTest, AddDocumentIsIncrementalFit) {
  TfIdfModel incremental;
  for (const auto& doc : SmallCorpus()) incremental.AddDocument(doc);
  TfIdfModel batch;
  batch.Fit(SmallCorpus());
  EXPECT_DOUBLE_EQ(incremental.Idf("quest"), batch.Idf("quest"));
  EXPECT_EQ(incremental.NumDocuments(), batch.NumDocuments());
}

TEST(TfIdfTest, VectorizeIsL2Normalized) {
  TfIdfModel model;
  model.Fit(SmallCorpus());
  const SparseVector v = model.Vectorize({"quest", "software"});
  double norm = 0;
  for (const auto& [t, w] : v) norm += w * w;
  EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(TfIdfTest, DuplicateTokensWithinDocCountOnceForDf) {
  TfIdfModel model;
  model.AddDocument({"x", "x", "x"});
  model.AddDocument({"y"});
  // df(x) == 1 despite three occurrences in the document.
  EXPECT_DOUBLE_EQ(model.Idf("x"), model.Idf("y"));
}

TEST(TfIdfTest, CosineBoundsAndIdentity) {
  TfIdfModel model;
  model.Fit(SmallCorpus());
  EXPECT_DOUBLE_EQ(model.CosineSimilarity({"quest", "software"},
                                          {"quest", "software"}),
                   1.0);
  EXPECT_DOUBLE_EQ(model.CosineSimilarity({"quest"}, {"springfield"}), 0.0);
  const double partial =
      model.CosineSimilarity({"quest", "software"}, {"quest", "labs"});
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 1.0);
}

TEST(TfIdfTest, EmptyDocuments) {
  TfIdfModel model;
  model.Fit(SmallCorpus());
  EXPECT_DOUBLE_EQ(model.CosineSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(model.CosineSimilarity({}, {"quest"}), 0.0);
}

TEST(TfIdfTest, RareTokenOverlapBeatsCommonTokenOverlap) {
  TfIdfModel model;
  // "common" appears everywhere, "rare" once.
  model.AddDocument({"common", "rare"});
  model.AddDocument({"common", "a"});
  model.AddDocument({"common", "b"});
  model.AddDocument({"common", "c"});
  const double via_rare =
      model.CosineSimilarity({"common", "rare"}, {"rare", "zzz"});
  const double via_common =
      model.CosineSimilarity({"common", "rare"}, {"common", "zzz"});
  EXPECT_GT(via_rare, via_common);
}

TEST(SparseCosineTest, Basics) {
  SparseVector a{{"x", 1.0}, {"y", 1.0}};
  SparseVector b{{"x", 1.0}};
  EXPECT_NEAR(SparseCosine(a, b), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(SparseCosine(a, SparseVector{}), 0.0);
}

}  // namespace
}  // namespace maroon
