#include "similarity/record_similarity.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TEST(ValueSetTokensTest, FlattensAndLowercases) {
  EXPECT_EQ(ValueSetTokens(MakeValueSet({"Quest Software", "S3"})),
            (std::vector<std::string>{"quest", "software", "s3"}));
  EXPECT_TRUE(ValueSetTokens({}).empty());
}

TEST(SimilarityCalculatorTest, EmptySets) {
  SimilarityCalculator calc;
  EXPECT_DOUBLE_EQ(calc.ValueSetSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(calc.ValueSetSimilarity(MakeValueSet({"a"}), {}), 0.0);
  EXPECT_DOUBLE_EQ(calc.ValueSetSimilarity({}, MakeValueSet({"a"})), 0.0);
}

TEST(SimilarityCalculatorTest, SingletonsUseJaroWinkler) {
  SimilarityCalculator calc;
  EXPECT_DOUBLE_EQ(
      calc.ValueSetSimilarity(MakeValueSet({"Manager"}),
                              MakeValueSet({"Manager"})),
      1.0);
  const double similar = calc.ValueSetSimilarity(MakeValueSet({"Engineer"}),
                                                 MakeValueSet({"Enginer"}));
  EXPECT_GT(similar, 0.9);
  const double different = calc.ValueSetSimilarity(
      MakeValueSet({"Director"}), MakeValueSet({"Engineer"}));
  EXPECT_LT(different, 0.7);
}

TEST(SimilarityCalculatorTest, MultiValueWithoutTfIdfUsesBestPair) {
  SimilarityCalculator calc;
  const double sim = calc.ValueSetSimilarity(
      MakeValueSet({"S3", "XJek"}), MakeValueSet({"S3", "XJek"}));
  EXPECT_DOUBLE_EQ(sim, 1.0);
  const double partial = calc.ValueSetSimilarity(
      MakeValueSet({"S3", "XJek"}), MakeValueSet({"S3", "Aelita"}));
  EXPECT_GT(partial, 0.4);
  EXPECT_LT(partial, 1.0);
}

TEST(SimilarityCalculatorTest, TfIdfPathForSetValues) {
  TfIdfModel tfidf;
  tfidf.AddDocument({"s3", "xjek"});
  tfidf.AddDocument({"quest", "software"});
  tfidf.AddDocument({"aelita"});
  SimilarityCalculator calc;
  calc.SetTfIdfModel(&tfidf);
  EXPECT_NEAR(calc.ValueSetSimilarity(MakeValueSet({"S3", "XJek"}),
                                      MakeValueSet({"S3", "XJek"})),
              1.0, 1e-9);
  EXPECT_LT(calc.ValueSetSimilarity(MakeValueSet({"S3", "XJek"}),
                                    MakeValueSet({"Aelita", "Quest"})),
            0.2);
}

TemporalRecord MakeRecord(RecordId id,
                          std::initializer_list<std::pair<Attribute, ValueSet>>
                              values) {
  TemporalRecord r(id, "X", 2000, 0);
  for (const auto& [a, v] : values) r.SetValue(a, v);
  return r;
}

TEST(SimilarityCalculatorTest, RecordSimilarityAveragesSharedAttributes) {
  SimilarityCalculator calc;
  const TemporalRecord a = MakeRecord(
      0, {{"Title", MakeValueSet({"Engineer"})},
          {"Org", MakeValueSet({"S3"})}});
  const TemporalRecord b = MakeRecord(
      1, {{"Title", MakeValueSet({"Engineer"})},
          {"Org", MakeValueSet({"S3"})}});
  EXPECT_DOUBLE_EQ(calc.RecordSimilarity(a, b), 1.0);

  const TemporalRecord c =
      MakeRecord(2, {{"Title", MakeValueSet({"Engineer"})},
                     {"Location", MakeValueSet({"Chicago"})}});
  // Only Title shared; similarity is that attribute's alone.
  EXPECT_DOUBLE_EQ(calc.RecordSimilarity(a, c), 1.0);

  const TemporalRecord d =
      MakeRecord(3, {{"Location", MakeValueSet({"Chicago"})}});
  EXPECT_DOUBLE_EQ(calc.RecordSimilarity(a, d), 0.0);
}

TEST(SimilarityCalculatorTest, RecordToStateSimilarity) {
  SimilarityCalculator calc;
  const TemporalRecord r = MakeRecord(
      0, {{"Title", MakeValueSet({"Engineer"})},
          {"Org", MakeValueSet({"S3"})}});
  std::map<Attribute, ValueSet> state{
      {"Title", MakeValueSet({"Engineer"})},
      {"Org", MakeValueSet({"S3"})}};
  EXPECT_DOUBLE_EQ(calc.RecordToStateSimilarity(r, state), 1.0);

  // Attributes absent from the state are ignored: the comparison runs over
  // the shared attributes only (here just Title).
  const TemporalRecord with_extra = MakeRecord(
      1, {{"Title", MakeValueSet({"Engineer"})},
          {"Interests", MakeValueSet({"Technology"})}});
  EXPECT_DOUBLE_EQ(calc.RecordToStateSimilarity(with_extra, state), 1.0);

  const TemporalRecord empty_record(2, "X", 2000, 0);
  EXPECT_DOUBLE_EQ(calc.RecordToStateSimilarity(empty_record, state), 0.0);
}

}  // namespace
}  // namespace maroon
