#include "similarity/soft_tfidf.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TfIdfModel FittedModel() {
  TfIdfModel model;
  model.AddDocument({"quest", "software"});
  model.AddDocument({"vertex", "labs"});
  model.AddDocument({"university", "of", "springfield"});
  model.AddDocument({"quest", "systems"});
  return model;
}

TEST(SoftTfIdfTest, ExactMatchIsOne) {
  const TfIdfModel model = FittedModel();
  SoftTfIdf soft(&model);
  EXPECT_NEAR(soft.Similarity({"quest", "software"}, {"quest", "software"}),
              1.0, 1e-9);
}

TEST(SoftTfIdfTest, EmptyBags) {
  const TfIdfModel model = FittedModel();
  SoftTfIdf soft(&model);
  EXPECT_DOUBLE_EQ(soft.Similarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(soft.Similarity({"quest"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(soft.Similarity({}, {"quest"}), 0.0);
}

TEST(SoftTfIdfTest, RecoversMisspelledTokens) {
  const TfIdfModel model = FittedModel();
  SoftTfIdf soft(&model, /*token_threshold=*/0.9);
  // Plain TF-IDF scores the misspelt token 0; SoftTFIDF pairs
  // "sofware" ~ "software" via Jaro-Winkler.
  const double hard =
      model.CosineSimilarity({"quest", "sofware"}, {"quest", "software"});
  const double soft_score =
      soft.Similarity({"quest", "sofware"}, {"quest", "software"});
  EXPECT_GT(soft_score, hard);
  EXPECT_GT(soft_score, 0.8);
}

TEST(SoftTfIdfTest, UnrelatedBagsStayLow) {
  const TfIdfModel model = FittedModel();
  SoftTfIdf soft(&model);
  EXPECT_LT(soft.Similarity({"quest", "software"},
                            {"university", "springfield"}),
            0.2);
}

TEST(SoftTfIdfTest, ThresholdGatesSoftPairs) {
  const TfIdfModel model = FittedModel();
  SoftTfIdf strict(&model, /*token_threshold=*/0.99);
  SoftTfIdf loose(&model, /*token_threshold=*/0.85);
  const std::vector<std::string> a = {"quest", "sofware"};
  const std::vector<std::string> b = {"quest", "software"};
  EXPECT_GT(loose.Similarity(a, b), strict.Similarity(a, b));
}

TEST(SoftTfIdfTest, BoundedByOne) {
  const TfIdfModel model = FittedModel();
  SoftTfIdf soft(&model, 0.8);
  // Many near-duplicate tokens could inflate the soft dot product; the
  // score must stay clamped.
  const double score = soft.Similarity({"quest", "quests", "queste"},
                                       {"quest", "quests", "queste"});
  EXPECT_LE(score, 1.0);
  EXPECT_GE(score, 0.9);
}

}  // namespace
}  // namespace maroon
