#include "similarity/string_metrics.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TEST(JaroTest, IdenticalAndEmpty) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
}

TEST(JaroTest, NoCommonCharacters) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, ClassicReferenceValues) {
  // Winkler's canonical examples.
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.822222, 1e-5);
}

TEST(JaroTest, Symmetric) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("CRATE", "TRACE"),
                   JaroSimilarity("TRACE", "CRATE"));
  EXPECT_DOUBLE_EQ(JaroSimilarity("DIXON", "DICKSONX"),
                   JaroSimilarity("DICKSONX", "DIXON"));
}

TEST(JaroWinklerTest, ClassicReferenceValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  // Same Jaro base but different shared prefixes.
  const double with_prefix = JaroWinklerSimilarity("prefixed", "prefixes");
  const double jaro_only = JaroSimilarity("prefixed", "prefixes");
  EXPECT_GT(with_prefix, jaro_only);
}

TEST(JaroWinklerTest, PrefixWeightClampedToQuarter) {
  // Weight above 0.25 must not push similarity past the 0.25-weight value.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abcd", "abce", /*prefix_weight=*/0.9),
                   JaroWinklerSimilarity("abcd", "abce", /*prefix_weight=*/0.25));
}

TEST(JaroWinklerTest, BoundedByOne) {
  EXPECT_LE(JaroWinklerSimilarity("aaaa", "aaab", 0.25), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, SymmetricAndTriangle) {
  EXPECT_EQ(LevenshteinDistance("abcde", "xbcdz"),
            LevenshteinDistance("xbcdz", "abcde"));
  const size_t ab = LevenshteinDistance("manager", "director");
  const size_t bc = LevenshteinDistance("director", "engineer");
  const size_t ac = LevenshteinDistance("manager", "engineer");
  EXPECT_LE(ac, ab + bc);
}

TEST(NormalizedLevenshteinTest, Range) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(NormalizedLevenshteinSimilarity("kitten", "sitting"),
              1.0 - 3.0 / 7.0, 1e-9);
}

TEST(JaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b"}), 1.0);
}

TEST(MongeElkanTest, AveragesBestTokenMatches) {
  EXPECT_DOUBLE_EQ(
      MongeElkanSimilarity({"quest", "software"}, {"quest", "software"}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"quest"}, {}), 0.0);
  // Typo'd tokens still match their counterpart well.
  const double typo = MongeElkanSimilarity({"qeust", "software"},
                                           {"quest", "software"});
  EXPECT_GT(typo, 0.85);
  EXPECT_LT(typo, 1.0);
}

TEST(MongeElkanTest, AsymmetryAndSymmetricWrapper) {
  // {a} against {a, z}: every token of the left finds a perfect match; the
  // reverse direction pays for z.
  const double forward = MongeElkanSimilarity({"alpha"}, {"alpha", "zzz"});
  const double backward = MongeElkanSimilarity({"alpha", "zzz"}, {"alpha"});
  EXPECT_DOUBLE_EQ(forward, 1.0);
  EXPECT_LT(backward, 1.0);
  EXPECT_DOUBLE_EQ(SymmetricMongeElkan({"alpha"}, {"alpha", "zzz"}), 1.0);
}

TEST(CharacterNGramsTest, Basics) {
  EXPECT_EQ(CharacterNGrams("abcd", 3),
            (std::vector<std::string>{"abc", "bcd"}));
  EXPECT_EQ(CharacterNGrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(CharacterNGrams("", 3).empty());
  EXPECT_TRUE(CharacterNGrams("abc", 0).empty());
  EXPECT_EQ(CharacterNGrams("abc", 3), (std::vector<std::string>{"abc"}));
}

TEST(TrigramSimilarityTest, RobustToSmallEdits) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("Quest Software", "Quest Software"),
                   1.0);
  const double close = TrigramSimilarity("Quest Software", "Quest Softwares");
  EXPECT_GT(close, 0.7);
  EXPECT_LT(TrigramSimilarity("Quest Software", "Vertex Labs"), 0.2);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abc", ""), 0.0);
}

}  // namespace
}  // namespace maroon
