#include "clustering/fusion.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TemporalRecord MakeRecord(RecordId id, TimePoint t, SourceId source,
                          const Attribute& attribute, const ValueSet& values) {
  TemporalRecord r(id, "X", t, source);
  r.SetValue(attribute, values);
  return r;
}

class FusionTest : public ::testing::Test {
 protected:
  std::map<Value, int64_t> CountsOf(
      const std::vector<TemporalRecord>& records, const Attribute& attribute) {
    std::map<Value, int64_t> counts;
    for (const auto& r : records) {
      for (const Value& v : r.GetValue(attribute)) ++counts[v];
    }
    return counts;
  }
  std::vector<const TemporalRecord*> Pointers(
      const std::vector<TemporalRecord>& records) {
    std::vector<const TemporalRecord*> out;
    for (const auto& r : records) out.push_back(&r);
    return out;
  }
};

TEST_F(FusionTest, MajorityVotePicksMostFrequent) {
  MajorityVoteFusion fusion;
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2000, 0, "T", MakeValueSet({"Engineer"})));
  records.push_back(MakeRecord(1, 2001, 0, "T", MakeValueSet({"Engineer"})));
  records.push_back(MakeRecord(2, 2002, 0, "T", MakeValueSet({"Enginer"})));
  EXPECT_EQ(fusion.Fuse("T", CountsOf(records, "T"), Pointers(records)),
            MakeValueSet({"Engineer"}));
  EXPECT_EQ(fusion.name(), "majority_vote");
}

TEST_F(FusionTest, MajorityVoteKeepsTies) {
  MajorityVoteFusion fusion;
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2000, 0, "T", MakeValueSet({"A"})));
  records.push_back(MakeRecord(1, 2001, 0, "T", MakeValueSet({"B"})));
  EXPECT_EQ(fusion.Fuse("T", CountsOf(records, "T"), Pointers(records)),
            MakeValueSet({"A", "B"}));
  EXPECT_TRUE(fusion.Fuse("T", {}, Pointers(records)).empty());
}

TEST_F(FusionTest, LatestWinsPrefersNewestRecord) {
  LatestWinsFusion fusion;
  std::vector<TemporalRecord> records;
  // Majority says "Old" (2 votes), but the newest record says "New".
  records.push_back(MakeRecord(0, 2000, 0, "T", MakeValueSet({"Old"})));
  records.push_back(MakeRecord(1, 2001, 0, "T", MakeValueSet({"Old"})));
  records.push_back(MakeRecord(2, 2005, 0, "T", MakeValueSet({"New"})));
  EXPECT_EQ(fusion.Fuse("T", CountsOf(records, "T"), Pointers(records)),
            MakeValueSet({"New"}));
}

TEST_F(FusionTest, LatestWinsFallsBackWithoutAttributeCarriers) {
  LatestWinsFusion fusion;
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2000, 0, "Other", MakeValueSet({"x"})));
  // No member carries "T": falls back to majority over counts.
  std::map<Value, int64_t> counts{{"A", 2}, {"B", 1}};
  EXPECT_EQ(fusion.Fuse("T", counts, Pointers(records)), MakeValueSet({"A"}));
}

TEST_F(FusionTest, ReliabilityWeightedDiscountsNoisySources) {
  ReliabilityModel reliability;
  // Source 0: perfect; source 1: mostly wrong.
  for (int i = 0; i < 10; ++i) reliability.AddObservation(0, "T", true);
  for (int i = 0; i < 10; ++i) reliability.AddObservation(1, "T", i < 2);
  ReliabilityWeightedFusion fusion(&reliability);

  std::vector<TemporalRecord> records;
  // Two noisy votes for "Wrong", one reliable vote for "Right".
  records.push_back(MakeRecord(0, 2000, 1, "T", MakeValueSet({"Wrong"})));
  records.push_back(MakeRecord(1, 2001, 1, "T", MakeValueSet({"Wrong"})));
  records.push_back(MakeRecord(2, 2002, 0, "T", MakeValueSet({"Right"})));
  // Plain majority would pick "Wrong" (2 vs 1); reliability weighting picks
  // "Right" (0.917 vs 2 * 0.25).
  EXPECT_EQ(fusion.Fuse("T", CountsOf(records, "T"), Pointers(records)),
            MakeValueSet({"Right"}));
}

TEST_F(FusionTest, ReliabilityWeightedMatchesMajorityWhenUniform) {
  ReliabilityModel reliability;  // untrained -> every source 1.0
  ReliabilityWeightedFusion fusion(&reliability);
  MajorityVoteFusion majority;
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2000, 0, "T", MakeValueSet({"A"})));
  records.push_back(MakeRecord(1, 2001, 1, "T", MakeValueSet({"A"})));
  records.push_back(MakeRecord(2, 2002, 2, "T", MakeValueSet({"B"})));
  EXPECT_EQ(fusion.Fuse("T", CountsOf(records, "T"), Pointers(records)),
            majority.Fuse("T", CountsOf(records, "T"), Pointers(records)));
}

}  // namespace
}  // namespace maroon
