#include "clustering/partition_clusterer.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TemporalRecord MakeRecord(RecordId id, TimePoint t,
                          std::initializer_list<std::pair<Attribute, ValueSet>>
                              values) {
  TemporalRecord r(id, "X", t, 0);
  for (const auto& [a, v] : values) r.SetValue(a, v);
  return r;
}

std::vector<const TemporalRecord*> Pointers(
    const std::vector<TemporalRecord>& records) {
  std::vector<const TemporalRecord*> out;
  for (const auto& r : records) out.push_back(&r);
  return out;
}

TEST(PartitionClustererTest, GroupsIdenticalStates) {
  SimilarityCalculator sim;
  PartitionClusterer clusterer(&sim, PartitionOptions{0.8});
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2001, {{"Title", MakeValueSet({"Engineer"})},
                                         {"Org", MakeValueSet({"S3"})}}));
  records.push_back(MakeRecord(1, 2002, {{"Title", MakeValueSet({"Engineer"})},
                                         {"Org", MakeValueSet({"S3"})}}));
  records.push_back(MakeRecord(2, 2008, {{"Title", MakeValueSet({"Director"})},
                                         {"Org", MakeValueSet({"Quest"})}}));
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 2u);
  EXPECT_EQ(clusters[1].size(), 1u);
}

TEST(PartitionClustererTest, SingleRecordSingleCluster) {
  SimilarityCalculator sim;
  PartitionClusterer clusterer(&sim);
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2001, {{"Title", MakeValueSet({"X"})}}));
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].records(), (std::vector<RecordId>{0}));
}

TEST(PartitionClustererTest, EmptyInput) {
  SimilarityCalculator sim;
  PartitionClusterer clusterer(&sim);
  EXPECT_TRUE(clusterer.ClusterRecords({}).empty());
}

TEST(PartitionClustererTest, ThresholdControlsGranularity) {
  SimilarityCalculator sim;
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2000, {{"Title", MakeValueSet({"Engineer"})}}));
  records.push_back(MakeRecord(1, 2001, {{"Title", MakeValueSet({"Enginer"})}}));
  // Typo-similar titles merge at a loose threshold, split at a strict one.
  PartitionClusterer loose(&sim, PartitionOptions{0.85});
  PartitionClusterer strict(&sim, PartitionOptions{0.999});
  EXPECT_EQ(loose.ClusterRecords(Pointers(records)).size(), 1u);
  EXPECT_EQ(strict.ClusterRecords(Pointers(records)).size(), 2u);
}

TEST(PartitionClustererTest, ProcessesInTimestampOrder) {
  SimilarityCalculator sim;
  PartitionClusterer clusterer(&sim, PartitionOptions{0.8});
  std::vector<TemporalRecord> records;
  // Presented out of order; the earliest record should seed the cluster and
  // the span should cover both.
  records.push_back(MakeRecord(0, 2009, {{"Title", MakeValueSet({"M"})}}));
  records.push_back(MakeRecord(1, 2001, {{"Title", MakeValueSet({"M"})}}));
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].tmin(), 2001);
  EXPECT_EQ(clusters[0].tmax(), 2009);
}

TEST(PartitionClustererTest, DisjointAttributesDoNotMerge) {
  SimilarityCalculator sim;
  PartitionClusterer clusterer(&sim, PartitionOptions{0.5});
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2000, {{"Title", MakeValueSet({"A"})}}));
  records.push_back(
      MakeRecord(1, 2001, {{"Location", MakeValueSet({"Chicago"})}}));
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  EXPECT_EQ(clusters.size(), 2u);
}

}  // namespace
}  // namespace maroon
