#include "clustering/adjusted_binding_clusterer.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace maroon {
namespace {

TemporalRecord MakeRecord(RecordId id, TimePoint t,
                          std::initializer_list<std::pair<Attribute, ValueSet>>
                              values) {
  TemporalRecord r(id, "X", t, 0);
  for (const auto& [a, v] : values) r.SetValue(a, v);
  return r;
}

std::vector<const TemporalRecord*> Pointers(
    const std::vector<TemporalRecord>& records) {
  std::vector<const TemporalRecord*> out;
  for (const auto& r : records) out.push_back(&r);
  return out;
}

TEST(AdjustedBindingTest, MatchesPartitionOnCleanData) {
  SimilarityCalculator sim;
  AdjustedBindingClusterer clusterer(&sim);
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2000, {{"T", MakeValueSet({"Engineer"})}}));
  records.push_back(MakeRecord(1, 2001, {{"T", MakeValueSet({"Engineer"})}}));
  records.push_back(MakeRecord(2, 2005, {{"T", MakeValueSet({"Director"})}}));
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  ASSERT_EQ(clusters.size(), 2u);
  size_t total = 0;
  for (const auto& c : clusters) total += c.size();
  EXPECT_EQ(total, 3u);
}

TEST(AdjustedBindingTest, ConvergesToArgmaxAssignment) {
  // The guarantee ref. [18]'s adjusted binding provides over early binding:
  // at the fixed point, every record sits in (one of) the cluster(s) whose
  // state it matches best — including clusters created after the record was
  // first processed.
  SimilarityCalculator sim;
  AdjustedBindingOptions options;
  options.similarity_threshold = 0.7;
  options.max_rounds = 10;
  AdjustedBindingClusterer clusterer(&sim, options);

  std::vector<TemporalRecord> records;
  // Two org states plus partial records scattered between them.
  for (RecordId id = 0; id < 4; ++id) {
    records.push_back(MakeRecord(
        id, 2000 + static_cast<TimePoint>(id),
        {{"T", MakeValueSet({"Analyst"})},
         {"O", MakeValueSet({"Acme Corp"})}}));
  }
  for (RecordId id = 4; id < 8; ++id) {
    records.push_back(MakeRecord(
        id, 2000 + static_cast<TimePoint>(id),
        {{"T", MakeValueSet({"Director"})},
         {"O", MakeValueSet({"Zeta Works"})}}));
  }
  records.push_back(MakeRecord(8, 2010, {{"O", MakeValueSet({"Zeta Works"})}}));
  records.push_back(MakeRecord(9, 2011, {{"T", MakeValueSet({"Analyst"})}}));

  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  ASSERT_GE(clusters.size(), 2u);

  std::vector<std::map<Attribute, ValueSet>> states;
  for (const Cluster& c : clusters) states.push_back(c.MajorityState());
  for (const TemporalRecord& r : records) {
    size_t assigned = clusters.size();
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].Contains(r.id())) assigned = i;
    }
    ASSERT_LT(assigned, clusters.size()) << "record " << r.id();
    const double own = sim.RecordToStateSimilarity(r, states[assigned]);
    for (size_t i = 0; i < clusters.size(); ++i) {
      const double other = sim.RecordToStateSimilarity(r, states[i]);
      // No strictly better cluster above the threshold exists.
      if (other >= options.similarity_threshold) {
        EXPECT_LE(other, own + 1e-9)
            << "record " << r.id() << " prefers cluster " << i;
      }
    }
  }
}

TEST(AdjustedBindingTest, NoRecordsNoClusters) {
  SimilarityCalculator sim;
  AdjustedBindingClusterer clusterer(&sim);
  EXPECT_TRUE(clusterer.ClusterRecords({}).empty());
}

TEST(AdjustedBindingTest, ConvergesWithinMaxRounds) {
  SimilarityCalculator sim;
  AdjustedBindingOptions options;
  options.max_rounds = 50;
  AdjustedBindingClusterer clusterer(&sim, options);
  std::vector<TemporalRecord> records;
  for (RecordId id = 0; id < 12; ++id) {
    records.push_back(MakeRecord(
        id, 2000 + static_cast<TimePoint>(id),
        {{"T", MakeValueSet({id % 2 == 0 ? "Engineer" : "Director"})}}));
  }
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  // A clean two-state workload converges in very few rounds, far below 50.
  EXPECT_LE(clusterer.last_rounds(), 3u);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(AdjustedBindingTest, EveryRecordAssignedExactlyOnce) {
  SimilarityCalculator sim;
  AdjustedBindingClusterer clusterer(&sim);
  std::vector<TemporalRecord> records;
  for (RecordId id = 0; id < 9; ++id) {
    records.push_back(MakeRecord(
        id, 2000 + static_cast<TimePoint>(id),
        {{"T", MakeValueSet({"V" + std::to_string(id % 3)})}}));
  }
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  std::vector<RecordId> all;
  for (const auto& c : clusters) {
    all.insert(all.end(), c.records().begin(), c.records().end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), 9u);
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
}

}  // namespace
}  // namespace maroon
