#include "clustering/late_binding_clusterer.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace maroon {
namespace {

TemporalRecord MakeRecord(RecordId id, TimePoint t,
                          std::initializer_list<std::pair<Attribute, ValueSet>>
                              values) {
  TemporalRecord r(id, "X", t, 0);
  for (const auto& [a, v] : values) r.SetValue(a, v);
  return r;
}

std::vector<const TemporalRecord*> Pointers(
    const std::vector<TemporalRecord>& records) {
  std::vector<const TemporalRecord*> out;
  for (const auto& r : records) out.push_back(&r);
  return out;
}

TEST(LateBindingTest, UnambiguousDataMatchesEarlyBinding) {
  SimilarityCalculator sim;
  LateBindingClusterer clusterer(&sim);
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2000, {{"T", MakeValueSet({"Engineer"})}}));
  records.push_back(MakeRecord(1, 2001, {{"T", MakeValueSet({"Engineer"})}}));
  records.push_back(MakeRecord(2, 2005, {{"T", MakeValueSet({"Director"})}}));
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  EXPECT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusterer.last_deferred(), 0u);
}

TEST(LateBindingTest, AmbiguousRecordsAreDeferred) {
  SimilarityCalculator sim;
  LateBindingOptions options;
  options.similarity_threshold = 0.5;
  options.ambiguity_ratio = 0.8;
  LateBindingClusterer clusterer(&sim, options);

  std::vector<TemporalRecord> records;
  // Two distinct states...
  records.push_back(MakeRecord(0, 2000, {{"T", MakeValueSet({"Engineer"})},
                                         {"O", MakeValueSet({"Acme"})}}));
  records.push_back(MakeRecord(1, 2001, {{"T", MakeValueSet({"Director"})},
                                         {"O", MakeValueSet({"Zeta"})}}));
  // ...then a partial record similar to both above the threshold: its only
  // attribute O matches neither strongly, but T is absent -> rely on O.
  records.push_back(MakeRecord(2, 2002, {{"O", MakeValueSet({"Acme"})}}));
  records.push_back(MakeRecord(3, 2003, {{"O", MakeValueSet({"Acme"})}}));
  // A record equally similar to two clusters gets deferred:
  records.push_back(MakeRecord(4, 2004, {{"T", MakeValueSet({"Engineer"})},
                                         {"T2", MakeValueSet({"x"})}}));

  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  size_t total = 0;
  for (const auto& c : clusters) total += c.size();
  EXPECT_EQ(total, records.size());
}

TEST(LateBindingTest, DeferredDecisionUsesFinalStates) {
  // A record ambiguous between two early clusters ends up with the cluster
  // that, by the end of the pass, matches it best.
  SimilarityCalculator sim;
  LateBindingOptions options;
  options.similarity_threshold = 0.45;
  options.ambiguity_ratio = 0.85;
  LateBindingClusterer clusterer(&sim, options);

  std::vector<TemporalRecord> records;
  // Cluster A seed and cluster B seed, mutually dissimilar.
  records.push_back(MakeRecord(0, 2000, {{"T", MakeValueSet({"Engineer"})},
                                         {"O", MakeValueSet({"AcmeCorp"})}}));
  records.push_back(MakeRecord(1, 2001, {{"T", MakeValueSet({"Engineen"})},
                                         {"O", MakeValueSet({"AcmeCorpX"})}}));
  // The ambiguous record (close to both seeds).
  records.push_back(MakeRecord(2, 2002, {{"T", MakeValueSet({"Engineer"})},
                                         {"O", MakeValueSet({"AcmeCorpX"})}}));
  // Later records reinforce cluster B's exact state to match record 2.
  records.push_back(MakeRecord(3, 2003, {{"T", MakeValueSet({"Engineer"})},
                                         {"O", MakeValueSet({"AcmeCorpX"})}}));

  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  // Wherever record 2 landed, record 3 (its twin) must be in the same
  // cluster — the late decision saw the final state.
  size_t r2_cluster = clusters.size(), r3_cluster = clusters.size();
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].Contains(2)) r2_cluster = i;
    if (clusters[i].Contains(3)) r3_cluster = i;
  }
  ASSERT_LT(r2_cluster, clusters.size());
  EXPECT_EQ(r2_cluster, r3_cluster);
}

TEST(LateBindingTest, EmptyInput) {
  SimilarityCalculator sim;
  LateBindingClusterer clusterer(&sim);
  EXPECT_TRUE(clusterer.ClusterRecords({}).empty());
  EXPECT_EQ(clusterer.last_deferred(), 0u);
}

TEST(LateBindingTest, AllRecordsAssignedExactlyOnce) {
  SimilarityCalculator sim;
  LateBindingOptions options;
  options.similarity_threshold = 0.6;
  LateBindingClusterer clusterer(&sim, options);
  std::vector<TemporalRecord> records;
  for (RecordId id = 0; id < 10; ++id) {
    records.push_back(MakeRecord(
        id, 2000 + static_cast<TimePoint>(id),
        {{"T", MakeValueSet({"V" + std::to_string(id % 3)})}}));
  }
  const auto clusters = clusterer.ClusterRecords(Pointers(records));
  std::vector<RecordId> all;
  for (const auto& c : clusters) {
    all.insert(all.end(), c.records().begin(), c.records().end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), 10u);
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
}

}  // namespace
}  // namespace maroon
