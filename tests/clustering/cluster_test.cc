#include "clustering/cluster.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TemporalRecord MakeRecord(RecordId id, TimePoint t,
                          std::initializer_list<std::pair<Attribute, ValueSet>>
                              values,
                          SourceId source = 0) {
  TemporalRecord r(id, "X", t, source);
  for (const auto& [a, v] : values) r.SetValue(a, v);
  return r;
}

TEST(ClusterTest, AddTracksMembersAndSpan) {
  Cluster c;
  EXPECT_TRUE(c.empty());
  c.Add(MakeRecord(1, 2005, {{"Title", MakeValueSet({"Engineer"})}}));
  c.Add(MakeRecord(2, 2002, {{"Title", MakeValueSet({"Engineer"})}}));
  c.Add(MakeRecord(3, 2008, {{"Title", MakeValueSet({"Manager"})}}));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.tmin(), 2002);
  EXPECT_EQ(c.tmax(), 2008);
  EXPECT_TRUE(c.Contains(2));
  EXPECT_FALSE(c.Contains(9));
}

TEST(ClusterTest, DuplicateAddIsNoOp) {
  Cluster c;
  const TemporalRecord r =
      MakeRecord(1, 2005, {{"Title", MakeValueSet({"Engineer"})}});
  c.Add(r);
  c.Add(r);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.value_counts().at("Title").at("Engineer"), 1);
}

TEST(ClusterTest, MajorityStatePicksMostFrequentValues) {
  Cluster c;
  c.Add(MakeRecord(1, 2000, {{"Title", MakeValueSet({"Engineer"})}}));
  c.Add(MakeRecord(2, 2001, {{"Title", MakeValueSet({"Engineer"})}}));
  c.Add(MakeRecord(3, 2002, {{"Title", MakeValueSet({"Enginer"})}}));
  const auto state = c.MajorityState();
  EXPECT_EQ(state.at("Title"), MakeValueSet({"Engineer"}));
}

TEST(ClusterTest, MajorityStateKeepsTies) {
  Cluster c;
  c.Add(MakeRecord(1, 2000, {{"Org", MakeValueSet({"S3", "XJek"})}}));
  c.Add(MakeRecord(2, 2001, {{"Org", MakeValueSet({"S3", "XJek"})}}));
  const auto state = c.MajorityState();
  EXPECT_EQ(state.at("Org"), MakeValueSet({"S3", "XJek"}));
}

TEST(ClusterTest, AddForAttributeOnlyCountsThatAttribute) {
  Cluster c;
  c.Add(MakeRecord(1, 2000, {{"Title", MakeValueSet({"Engineer"})},
                             {"Location", MakeValueSet({"Chicago"})}}));
  // A stale record joins only on Title; its Location must not leak in.
  c.AddForAttribute(
      MakeRecord(2, 2004,
                 {{"Title", MakeValueSet({"Engineer"})},
                  {"Location", MakeValueSet({"Boston"})}}),
      "Title");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.value_counts().at("Title").at("Engineer"), 2);
  EXPECT_EQ(c.value_counts().at("Location").count("Boston"), 0u);
}

TEST(ClusterTest, AddForAttributeTwiceOnDifferentAttributes) {
  Cluster c;
  const TemporalRecord r =
      MakeRecord(5, 2003, {{"Title", MakeValueSet({"Manager"})},
                           {"Org", MakeValueSet({"Aelita"})}});
  c.AddForAttribute(r, "Title");
  c.AddForAttribute(r, "Org");
  EXPECT_EQ(c.size(), 1u);  // member added once
  EXPECT_EQ(c.value_counts().at("Title").at("Manager"), 1);
  EXPECT_EQ(c.value_counts().at("Org").at("Aelita"), 1);
}

TEST(ClusterSignatureTest, BuildSignature) {
  Cluster c;
  c.Add(MakeRecord(1, 2001, {{"Title", MakeValueSet({"Engineer"})}}));
  c.Add(MakeRecord(2, 2002, {{"Title", MakeValueSet({"Engineer"})}}));
  const ClusterSignature sig = c.BuildSignature(0.0);
  EXPECT_EQ(sig.interval, Interval(2001, 2002));
  EXPECT_EQ(sig.ValuesOf("Title"), MakeValueSet({"Engineer"}));
  EXPECT_DOUBLE_EQ(sig.ConfidenceOf("Title"), 0.0);
  EXPECT_TRUE(sig.ValuesOf("Nothing").empty());
  EXPECT_DOUBLE_EQ(sig.ConfidenceOf("Nothing"), 0.0);
}

TEST(ClusterSignatureTest, ToStringRenders) {
  Cluster c;
  c.Add(MakeRecord(1, 2001, {{"Title", MakeValueSet({"Engineer"})}}));
  const std::string s = c.BuildSignature(1.5).ToString();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("Engineer"), std::string::npos);
}

}  // namespace
}  // namespace maroon
