#ifndef MAROON_TESTS_TESTING_PAPER_EXAMPLE_H_
#define MAROON_TESTS_TESTING_PAPER_EXAMPLE_H_

#include <vector>

#include "core/dataset.h"
#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "freshness/freshness_model.h"

namespace maroon::testing {

/// Attribute names of the paper's running example (Tables 1-3).
inline const Attribute kOrg = "Organization";
inline const Attribute kTitle = "Title";
inline const Attribute kLocation = "Location";
inline const Attribute kInterests = "Interests";

inline std::vector<Attribute> PaperAttributes() {
  return {kOrg, kTitle, kLocation, kInterests};
}

/// Table 1: David Brown's submitted employment history, as the profile of
/// Example 3.
EntityProfile DavidBrownProfile();

/// Table 2: the nine web records r1-r9. Returned inside a Dataset with
/// sources GooglePlus(0), Facebook(1), Twitter(2); record ids are 0-based
/// (r1 -> id 0, ..., r9 -> id 8). Ground-truth labels mark r6 (id 5) as the
/// only non-match.
Dataset PaperRecords();

/// A freshness model matching the running example: Google+ and Twitter are
/// fresh on every attribute; Facebook publishes Organization and Title with
/// delays (mass at 0/2/10 years) but is fresh on Location and Interests.
FreshnessModel PaperFreshnessModel();

/// Training careers for the transition model of the running example:
/// Engineer -> Manager -> Director is the dominant trajectory (plus some
/// noise paths), so Manager->Director after several years is likely while
/// Manager->"IT Contractor" is unseen.
ProfileSet CareerTrainingProfiles();

}  // namespace maroon::testing

#endif  // MAROON_TESTS_TESTING_PAPER_EXAMPLE_H_
