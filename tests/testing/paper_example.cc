#include "testing/paper_example.h"

namespace maroon::testing {

EntityProfile DavidBrownProfile() {
  EntityProfile profile("david_1", "David Brown");
  TemporalSequence& org = profile.sequence(kOrg);
  (void)org.Append(Triple(2000, 2001, MakeValueSet({"S3", "XJek"})));
  (void)org.Append(Triple(2002, 2002, MakeValueSet({"XJek"})));
  (void)org.Append(Triple(2003, 2005, MakeValueSet({"Aelita"})));
  (void)org.Append(Triple(2006, 2009, MakeValueSet({"Quest Software"})));
  TemporalSequence& title = profile.sequence(kTitle);
  (void)title.Append(Triple(2000, 2002, MakeValueSet({"Engineer"})));
  (void)title.Append(Triple(2003, 2009, MakeValueSet({"Manager"})));
  return profile;
}

Dataset PaperRecords() {
  Dataset dataset;
  dataset.SetAttributes(PaperAttributes());
  const SourceId google_plus = dataset.AddSource("GooglePlus");
  const SourceId facebook = dataset.AddSource("Facebook");
  const SourceId twitter = dataset.AddSource("Twitter");

  const std::string name = "David Brown";
  const auto add = [&](TimePoint t, SourceId s,
                       std::initializer_list<std::pair<Attribute, ValueSet>>
                           values,
                       bool matches) {
    TemporalRecord r(0, name, t, s);
    for (const auto& [attr, vs] : values) r.SetValue(attr, vs);
    const RecordId id = dataset.AddRecord(std::move(r));
    if (matches) (void)dataset.SetLabel(id, "david_1");
  };

  // r1, r2: fresh Google+ snapshots of the early career.
  add(2001, google_plus,
      {{kOrg, MakeValueSet({"S3", "XJek"})},
       {kTitle, MakeValueSet({"Engineer"})}},
      true);
  add(2002, google_plus,
      {{kOrg, MakeValueSet({"S3", "XJek"})},
       {kTitle, MakeValueSet({"Engineer"})}},
      true);
  // r3: Facebook, 2004, but the values lag by two years (Example 6).
  add(2004, facebook,
      {{kOrg, MakeValueSet({"S3", "XJek"})},
       {kTitle, MakeValueSet({"Engineer"})}},
      true);
  // r4: Twitter, fresh.
  add(2004, twitter,
      {{kTitle, MakeValueSet({"Manager"})},
       {kLocation, MakeValueSet({"Chicago"})}},
      true);
  // r5: the promotion record (should match via the transition model).
  add(2011, google_plus,
      {{kOrg, MakeValueSet({"Quest Software"})},
       {kTitle, MakeValueSet({"Director"})},
       {kInterests, MakeValueSet({"Technology"})}},
      true);
  // r6: the decoy — same org, implausible title (must NOT match).
  add(2011, google_plus,
      {{kOrg, MakeValueSet({"Quest Software"})},
       {kTitle, MakeValueSet({"IT Contractor"})}},
      false);
  // r7: Facebook 2012 — Title stale by a decade, Location/Interests fresh.
  add(2012, facebook,
      {{kTitle, MakeValueSet({"Engineer"})},
       {kLocation, MakeValueSet({"Chicago"})},
       {kInterests, MakeValueSet({"Politics", "Sports"})}},
      true);
  // r8, r9: the 2013 presidency at WSO2.
  add(2013, twitter,
      {{kOrg, MakeValueSet({"WSO2"})},
       {kTitle, MakeValueSet({"President"})},
       {kLocation, MakeValueSet({"Chicago"})}},
      true);
  add(2013, google_plus,
      {{kOrg, MakeValueSet({"WSO2"})},
       {kTitle, MakeValueSet({"President"})},
       {kInterests, MakeValueSet({"Technology"})}},
      true);

  TargetEntity target;
  target.clean_profile = DavidBrownProfile();
  target.ground_truth = DavidBrownProfile();
  (void)dataset.AddTarget("david_1", std::move(target));
  return dataset;
}

FreshnessModel PaperFreshnessModel() {
  FreshnessModel model;
  const SourceId google_plus = 0, facebook = 1, twitter = 2;
  for (const Attribute& a : PaperAttributes()) {
    // Google+ and Twitter: overwhelmingly fresh.
    for (int i = 0; i < 19; ++i) model.AddObservation(google_plus, a, 0);
    model.AddObservation(google_plus, a, 1);
    for (int i = 0; i < 19; ++i) model.AddObservation(twitter, a, 0);
    model.AddObservation(twitter, a, 1);
  }
  // Facebook: stale on Organization and Title...
  for (const Attribute& a : {kOrg, kTitle}) {
    for (int i = 0; i < 3; ++i) model.AddObservation(facebook, a, 0);
    for (int i = 0; i < 3; ++i) model.AddObservation(facebook, a, 2);
    for (int i = 0; i < 4; ++i) model.AddObservation(facebook, a, 10);
  }
  // ...but fresh on Location and Interests.
  for (const Attribute& a : {kLocation, kInterests}) {
    for (int i = 0; i < 19; ++i) model.AddObservation(facebook, a, 0);
    model.AddObservation(facebook, a, 1);
  }
  model.Finalize();
  return model;
}

ProfileSet CareerTrainingProfiles() {
  ProfileSet profiles;
  const auto career = [&](const std::string& id,
                          std::initializer_list<
                              std::tuple<TimePoint, TimePoint, Value>>
                              title_spells) {
    EntityProfile p(id, id);
    TemporalSequence& title = p.sequence(kTitle);
    for (const auto& [b, e, v] : title_spells) {
      (void)title.Append(Triple(b, e, MakeValueSet({v})));
    }
    profiles.push_back(std::move(p));
  };

  // The dominant trajectory: long Manager stints end in Director.
  career("t1", {{2000, 2002, "Engineer"},
                {2003, 2010, "Manager"},
                {2011, 2014, "Director"}});
  career("t2", {{1998, 2001, "Engineer"},
                {2002, 2009, "Manager"},
                {2010, 2014, "Director"}});
  career("t3", {{2001, 2003, "Engineer"},
                {2004, 2011, "Manager"},
                {2012, 2014, "Director"}});
  career("t4", {{1999, 2002, "Engineer"},
                {2003, 2009, "Manager"},
                {2010, 2013, "Director"},
                {2014, 2014, "President"}});
  // Noise paths: analysts, consultants, a short-tenure contractor start.
  career("t5", {{2000, 2002, "Analyst"},
                {2003, 2007, "Manager"},
                {2008, 2014, "Director"}});
  career("t6", {{2002, 2003, "IT Contractor"},
                {2004, 2007, "Engineer"},
                {2008, 2014, "Manager"}});
  career("t7", {{2000, 2005, "Engineer"},
                {2006, 2010, "Consultant"},
                {2011, 2014, "Manager"}});
  career("t8", {{2004, 2008, "Director"},
                {2009, 2014, "President"}});
  return profiles;
}

}  // namespace maroon::testing
