#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace maroon {
namespace obs {
namespace {

class PrometheusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    MetricsRegistry::Global().ResetAll();
    MetricsRegistry::SetEnabled(true);
  }
};

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST_F(PrometheusTest, NameSanitizesToPrometheusCharset) {
  EXPECT_EQ(PrometheusName("maroon.phase1.clusters_formed"),
            "maroon_phase1_clusters_formed");
  EXPECT_EQ(PrometheusName("maroon.link.entity_seconds"),
            "maroon_link_entity_seconds");
  EXPECT_EQ(PrometheusName("weird-name:ok/2"), "weird_name:ok_2");
  // Leading digit is not a valid first character.
  EXPECT_EQ(PrometheusName("9lives"), "_lives");
}

TEST_F(PrometheusTest, CountersAndGaugesRenderOneSampleEach) {
  MetricsRegistry::Snapshot snapshot;
  snapshot.counters["maroon.test.rows"] = 42;
  snapshot.gauges["maroon.test.ratio"] = 0.5;
  const std::string text = PrometheusText(snapshot);
  EXPECT_TRUE(Contains(text, "# TYPE maroon_test_rows counter")) << text;
  EXPECT_TRUE(Contains(text, "# HELP maroon_test_rows ")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_rows 42\n")) << text;
  EXPECT_TRUE(Contains(text, "# TYPE maroon_test_ratio gauge")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_ratio 0.5\n")) << text;
}

TEST_F(PrometheusTest, FixedHistogramRendersCumulativeBuckets) {
  MetricsRegistry::Snapshot snapshot;
  HistogramSnapshot h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {3, 2, 0, 1};  // last is overflow (> 4.0)
  h.count = 6;
  h.sum = 9.5;
  snapshot.histograms["maroon.test.sizes"] = h;
  const std::string text = PrometheusText(snapshot);
  EXPECT_TRUE(Contains(text, "# TYPE maroon_test_sizes histogram")) << text;
  // Buckets are cumulative, not per-bin.
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_bucket{le=\"1\"} 3\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_bucket{le=\"2\"} 5\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_bucket{le=\"4\"} 5\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_bucket{le=\"+Inf\"} 6\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_sum 9.5\n")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_count 6\n")) << text;
}

TEST_F(PrometheusTest, LatencyHistogramDownsamplesToScrapeLadder) {
  LatencyHistogram h;
  h.Record(0.00005);  // 50us
  h.Record(0.003);    // 3ms
  h.Record(0.003);
  h.Record(2.0);      // 2s
  MetricsRegistry::Snapshot snapshot;
  snapshot.latency_histograms["maroon.test.link_seconds"] = h.Snapshot();
  const std::string text = PrometheusText(snapshot);
  EXPECT_TRUE(Contains(text, "# TYPE maroon_test_link_seconds histogram"))
      << text;
  // The ladder is LatencySecondsBuckets(): 1e-5 * 4^k. Spot-check the
  // cumulative counts at a few rungs against CountAtOrBelow semantics.
  EXPECT_TRUE(
      Contains(text, "maroon_test_link_seconds_bucket{le=\"1e-05\"} 0\n"))
      << text;
  EXPECT_TRUE(
      Contains(text, "maroon_test_link_seconds_bucket{le=\"0.00016\"} 1\n"))
      << text;
  EXPECT_TRUE(
      Contains(text, "maroon_test_link_seconds_bucket{le=\"0.01024\"} 3\n"))
      << text;
  EXPECT_TRUE(
      Contains(text, "maroon_test_link_seconds_bucket{le=\"+Inf\"} 4\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_link_seconds_count 4\n")) << text;
  // Every rung of the ladder plus +Inf is present exactly once.
  size_t rungs = 0;
  size_t pos = 0;
  const std::string needle = "maroon_test_link_seconds_bucket{le=";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++rungs;
    pos += needle.size();
  }
  EXPECT_EQ(rungs, LatencySecondsBuckets().size() + 1);
}

TEST_F(PrometheusTest, GlobalRenderPicksUpRegisteredMetrics) {
  MAROON_COUNTER("maroon.test.prom_counter")->Add(7);
  MAROON_LATENCY("maroon.test.prom_seconds")->Record(0.001);
  const std::string text = PrometheusTextFromGlobal();
  EXPECT_TRUE(Contains(text, "maroon_test_prom_counter 7\n")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_prom_seconds_count 1\n")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_prom_seconds_sum 0.001\n")) << text;
}

TEST_F(PrometheusTest, EmptySnapshotRendersEmptyDocument) {
  MetricsRegistry::Snapshot snapshot;
  EXPECT_EQ(PrometheusText(snapshot), "");
}

}  // namespace
}  // namespace obs
}  // namespace maroon
