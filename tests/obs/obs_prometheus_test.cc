#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace maroon {
namespace obs {
namespace {

class PrometheusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    MetricsRegistry::Global().ResetAll();
    MetricsRegistry::SetEnabled(true);
  }
};

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST_F(PrometheusTest, NameSanitizesToPrometheusCharset) {
  EXPECT_EQ(PrometheusName("maroon.phase1.clusters_formed"),
            "maroon_phase1_clusters_formed");
  EXPECT_EQ(PrometheusName("maroon.link.entity_seconds"),
            "maroon_link_entity_seconds");
  EXPECT_EQ(PrometheusName("weird-name:ok/2"), "weird_name:ok_2");
  // Leading digit is not a valid first character.
  EXPECT_EQ(PrometheusName("9lives"), "_lives");
}

TEST_F(PrometheusTest, CountersAndGaugesRenderOneSampleEach) {
  MetricsRegistry::Snapshot snapshot;
  snapshot.counters["maroon.test.rows"] = 42;
  snapshot.gauges["maroon.test.ratio"] = 0.5;
  const std::string text = PrometheusText(snapshot);
  EXPECT_TRUE(Contains(text, "# TYPE maroon_test_rows counter")) << text;
  EXPECT_TRUE(Contains(text, "# HELP maroon_test_rows ")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_rows 42\n")) << text;
  EXPECT_TRUE(Contains(text, "# TYPE maroon_test_ratio gauge")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_ratio 0.5\n")) << text;
}

TEST_F(PrometheusTest, FixedHistogramRendersCumulativeBuckets) {
  MetricsRegistry::Snapshot snapshot;
  HistogramSnapshot h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {3, 2, 0, 1};  // last is overflow (> 4.0)
  h.count = 6;
  h.sum = 9.5;
  snapshot.histograms["maroon.test.sizes"] = h;
  const std::string text = PrometheusText(snapshot);
  EXPECT_TRUE(Contains(text, "# TYPE maroon_test_sizes histogram")) << text;
  // Buckets are cumulative, not per-bin.
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_bucket{le=\"1\"} 3\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_bucket{le=\"2\"} 5\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_bucket{le=\"4\"} 5\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_bucket{le=\"+Inf\"} 6\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_sum 9.5\n")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_sizes_count 6\n")) << text;
}

TEST_F(PrometheusTest, LatencyHistogramDownsamplesToScrapeLadder) {
  LatencyHistogram h;
  h.Record(0.00005);  // 50us
  h.Record(0.003);    // 3ms
  h.Record(0.003);
  h.Record(2.0);      // 2s
  MetricsRegistry::Snapshot snapshot;
  snapshot.latency_histograms["maroon.test.link_seconds"] = h.Snapshot();
  const std::string text = PrometheusText(snapshot);
  EXPECT_TRUE(Contains(text, "# TYPE maroon_test_link_seconds histogram"))
      << text;
  // The ladder is LatencySecondsBuckets(): 1e-5 * 4^k. Spot-check the
  // cumulative counts at a few rungs against CountAtOrBelow semantics.
  EXPECT_TRUE(
      Contains(text, "maroon_test_link_seconds_bucket{le=\"1e-05\"} 0\n"))
      << text;
  EXPECT_TRUE(
      Contains(text, "maroon_test_link_seconds_bucket{le=\"0.00016\"} 1\n"))
      << text;
  EXPECT_TRUE(
      Contains(text, "maroon_test_link_seconds_bucket{le=\"0.01024\"} 3\n"))
      << text;
  EXPECT_TRUE(
      Contains(text, "maroon_test_link_seconds_bucket{le=\"+Inf\"} 4\n"))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_test_link_seconds_count 4\n")) << text;
  // Every rung of the ladder plus +Inf is present exactly once.
  size_t rungs = 0;
  size_t pos = 0;
  const std::string needle = "maroon_test_link_seconds_bucket{le=";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++rungs;
    pos += needle.size();
  }
  EXPECT_EQ(rungs, LatencySecondsBuckets().size() + 1);
}

TEST_F(PrometheusTest, GlobalRenderPicksUpRegisteredMetrics) {
  MAROON_COUNTER("maroon.test.prom_counter")->Add(7);
  MAROON_LATENCY("maroon.test.prom_seconds")->Record(0.001);
  const std::string text = PrometheusTextFromGlobal();
  EXPECT_TRUE(Contains(text, "maroon_test_prom_counter 7\n")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_prom_seconds_count 1\n")) << text;
  EXPECT_TRUE(Contains(text, "maroon_test_prom_seconds_sum 0.001\n")) << text;
}

TEST_F(PrometheusTest, EmptySnapshotRendersEmptyDocument) {
  MetricsRegistry::Snapshot snapshot;
  EXPECT_EQ(PrometheusText(snapshot), "");
}

TEST_F(PrometheusTest, HelpTextEscapesBackslashesAndNewlines) {
  EXPECT_EQ(PrometheusEscapeHelp("plain text"), "plain text");
  EXPECT_EQ(PrometheusEscapeHelp("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeHelp("line1\nline2"), "line1\\nline2");
  // Double quotes are legal in HELP text and stay as-is.
  EXPECT_EQ(PrometheusEscapeHelp("say \"hi\""), "say \"hi\"");
}

TEST_F(PrometheusTest, LabelValuesEscapeQuotesToo) {
  EXPECT_EQ(PrometheusEscapeLabel("v1.0.0"), "v1.0.0");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabel("line1\nline2"), "line1\\nline2");
}

TEST_F(PrometheusTest, CollidingSanitizedNamesKeepOneSeries) {
  MetricsRegistry::Snapshot snapshot;
  // Both sanitize to maroon_coll_x; map order makes "maroon.coll-x" first.
  snapshot.counters["maroon.coll-x"] = 1;
  snapshot.counters["maroon.coll.x"] = 2;
  const std::string text = PrometheusText(snapshot);
  size_t samples = 0;
  size_t pos = 0;
  while ((pos = text.find("\nmaroon_coll_x ", pos)) != std::string::npos) {
    ++samples;
    ++pos;
  }
  EXPECT_EQ(samples, 1u) << text;
  EXPECT_TRUE(
      Contains(text, "# maroon: dropped colliding series maroon.coll.x"))
      << text;
  // The deduplicated document still lints clean.
  EXPECT_TRUE(PrometheusLint(text).empty()) << text;
}

TEST_F(PrometheusTest, BuildInfoGaugeRendersWithVersionLabels) {
  RegisterBuildMetrics();
  const std::string text = PrometheusTextFromGlobal();
  EXPECT_TRUE(Contains(text, "maroon_build_info{version=\"")) << text;
  EXPECT_TRUE(Contains(text, "revision=\"")) << text;
  EXPECT_TRUE(Contains(text, "maroon_build_info{version=\"" +
                                 PrometheusEscapeLabel(BuildVersion()) +
                                 "\""))
      << text;
  EXPECT_TRUE(Contains(text, "maroon_uptime_seconds ")) << text;
  EXPECT_TRUE(PrometheusLint(text).empty()) << text;
}

TEST_F(PrometheusTest, UptimeAdvancesAcrossSnapshots) {
  RegisterBuildMetrics();
  const auto first = MetricsRegistry::Global().TakeSnapshot();
  const auto second = MetricsRegistry::Global().TakeSnapshot();
  ASSERT_EQ(first.gauges.count("maroon.uptime_seconds"), 1u);
  ASSERT_EQ(second.gauges.count("maroon.uptime_seconds"), 1u);
  EXPECT_GE(second.gauges.at("maroon.uptime_seconds"),
            first.gauges.at("maroon.uptime_seconds"));
  EXPECT_GT(second.gauges.at("maroon.uptime_seconds"), 0.0);
}

TEST_F(PrometheusTest, RealExportLintsClean) {
  MAROON_COUNTER("maroon.test.lint_rows")->Add(12);
  MAROON_GAUGE("maroon.test.lint_ratio")->Set(0.25);
  MAROON_LATENCY("maroon.test.lint_seconds")->Record(0.004);
  const std::vector<std::string> problems =
      PrometheusLint(PrometheusTextFromGlobal());
  EXPECT_TRUE(problems.empty())
      << problems.size() << " problems, first: " << problems.front();
}

TEST_F(PrometheusTest, LintAcceptsAnEmptyDocument) {
  EXPECT_TRUE(PrometheusLint("").empty());
}

TEST_F(PrometheusTest, LintFlagsBadMetricNames) {
  const auto problems = PrometheusLint("9bad_name 1\n");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_TRUE(Contains(problems[0], "line 1")) << problems[0];
}

TEST_F(PrometheusTest, LintFlagsMissingTypeForHistogramFamilies) {
  // _bucket samples without a "# TYPE <base> histogram" header.
  const auto problems = PrometheusLint(
      "x_bucket{le=\"1\"} 1\nx_bucket{le=\"+Inf\"} 1\nx_count 1\nx_sum 1\n");
  EXPECT_FALSE(problems.empty());
}

TEST_F(PrometheusTest, LintFlagsNonCumulativeHistogramBuckets) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"2\"} 3\n"  // decreasing: not cumulative
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 10\n"
      "h_count 5\n";
  const auto problems = PrometheusLint(text);
  ASSERT_FALSE(problems.empty());
  bool mentioned = false;
  for (const std::string& problem : problems) {
    if (Contains(problem, "cumulative")) mentioned = true;
  }
  EXPECT_TRUE(mentioned) << problems.front();
}

TEST_F(PrometheusTest, LintFlagsMissingInfBucket) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_sum 10\n"
      "h_count 5\n";
  EXPECT_FALSE(PrometheusLint(text).empty());
}

TEST_F(PrometheusTest, LintFlagsCountDisagreeingWithInf) {
  const std::string text =
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 10\n"
      "h_count 7\n";
  EXPECT_FALSE(PrometheusLint(text).empty());
}

TEST_F(PrometheusTest, LintFlagsDuplicateTypeLinesAndBadLabelSyntax) {
  EXPECT_FALSE(
      PrometheusLint("# TYPE a counter\n# TYPE a counter\na 1\n").empty());
  EXPECT_FALSE(PrometheusLint("a{9bad=\"x\"} 1\n").empty());
  EXPECT_FALSE(PrometheusLint("a{l=\"unterminated} 1\n").empty());
  EXPECT_FALSE(PrometheusLint("a notanumber\n").empty());
}

TEST_F(PrometheusTest, LintAcceptsEscapedLabelValuesAndTimestamps) {
  EXPECT_TRUE(
      PrometheusLint("# TYPE a gauge\n"
                     "a{l=\"quote \\\" slash \\\\ nl \\n\"} 1\n")
          .empty());
  EXPECT_TRUE(
      PrometheusLint("# TYPE a gauge\na{l=\"x\"} +Inf\n").empty());
  EXPECT_TRUE(
      PrometheusLint("# TYPE a gauge\na 1 1700000000\n").empty());
  EXPECT_FALSE(
      PrometheusLint("# TYPE a gauge\na 1 not-a-timestamp\n").empty());
}

TEST_F(PrometheusTest, LintDemandsTypeBeforeEverySample) {
  // This exporter always emits TYPE headers, so the lint treats a bare
  // sample as a problem even though the wire format tolerates it.
  const auto problems = PrometheusLint("untyped_sample 1\n");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_TRUE(Contains(problems[0], "precedes its TYPE")) << problems[0];
}

}  // namespace
}  // namespace obs
}  // namespace maroon
