#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/json.h"

namespace maroon {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::SetEnabled(true);
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::SetEnabled(false);
    Tracer::Global().Clear();
  }
};

TEST(TraceDisabledTest, DisabledSpanRecordsNothing) {
  Tracer::SetEnabled(false);
  Tracer::Global().Clear();
  { MAROON_TRACE_SPAN("test.disabled"); }
  EXPECT_EQ(Tracer::Global().span_count(), 0u);
}

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  {
    MAROON_TRACE_SPAN("test.parent");
    { MAROON_TRACE_SPAN("test.child"); }
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Snapshot orders by start time: the parent opened first.
  EXPECT_EQ(spans[0].name, "test.parent");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "test.child");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  // ts/dur containment is what lets trace viewers rebuild the hierarchy.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].start_us + spans[1].duration_us,
            spans[0].start_us + spans[0].duration_us);
}

TEST_F(TraceTest, SiblingSpansKeepTheirOpeningOrder) {
  {
    MAROON_TRACE_SPAN("test.outer");
    { MAROON_TRACE_SPAN("test.first"); }
    { MAROON_TRACE_SPAN("test.second"); }
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[1].name, "test.first");
  EXPECT_EQ(spans[2].name, "test.second");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_GE(spans[2].start_us, spans[1].start_us + spans[1].duration_us);
}

TEST_F(TraceTest, SpansFromOtherThreadsGetDistinctTids) {
  {
    MAROON_TRACE_SPAN("test.main_thread");
    // maroon-lint: allow(R008)
    std::thread worker([] { MAROON_TRACE_SPAN("test.worker_thread"); });
    worker.join();
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[0].name, "test.main_thread");
  EXPECT_NE(spans[0].tid, spans[1].tid);
  // Depth is per thread: the worker's span is a root on its own thread.
  EXPECT_EQ(spans[1].depth, 0);
}

TEST_F(TraceTest, RootSpanSecondsSumsOnlyDepthZeroSpans) {
  SpanRecord root;
  root.name = "test.root";
  root.start_us = 0.0;
  root.duration_us = 1.5e6;
  Tracer::Global().Record(root);
  SpanRecord child;
  child.name = "test.child";
  child.start_us = 100.0;
  child.duration_us = 5e5;
  child.depth = 1;
  Tracer::Global().Record(child);
  EXPECT_DOUBLE_EQ(Tracer::Global().RootSpanSeconds(), 1.5);
}

TEST_F(TraceTest, ClearDropsSpans) {
  { MAROON_TRACE_SPAN("test.span"); }
  EXPECT_EQ(Tracer::Global().span_count(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().span_count(), 0u);
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  {
    MAROON_TRACE_SPAN("test.parent");
    { MAROON_TRACE_SPAN("test.child"); }
  }
  auto parsed = ParseJson(Tracer::Global().ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("displayTimeUnit")->string_value, "ms");
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  for (const JsonValue& event : events->array) {
    EXPECT_EQ(event.Find("ph")->string_value, "X");
    EXPECT_EQ(event.Find("cat")->string_value, "maroon");
    EXPECT_DOUBLE_EQ(event.Find("pid")->number_value, 1.0);
    EXPECT_TRUE(event.Find("ts")->is_number());
    EXPECT_TRUE(event.Find("dur")->is_number());
  }
  EXPECT_EQ(events->array[0].Find("name")->string_value, "test.parent");
  EXPECT_EQ(events->array[1].Find("name")->string_value, "test.child");
}

TEST_F(TraceTest, PoolTaskScopeAttributesSpansPerWorker) {
  {
    MAROON_TRACE_SPAN("test.caller");
    ThreadPool pool(4);
    pool.ParallelFor(8, 4, [&](int /*strand*/, size_t /*i*/) {
      PoolTaskScope task("pool.test_task");
      MAROON_TRACE_SPAN("test.inner_work");
    });
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  // 1 caller span + 8 task roots + 8 inner spans.
  ASSERT_EQ(spans.size(), 17u);

  size_t task_roots = 0;
  size_t inner = 0;
  size_t caller_roots = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == "pool.test_task") {
      ++task_roots;
      // Every task gets a fresh per-thread root — even tasks on the caller
      // strand, whose thread already has "test.caller" open.
      EXPECT_EQ(span.depth, 0);
      EXPECT_TRUE(span.pool_worker);
    } else if (span.name == "test.inner_work") {
      ++inner;
      // Spans inside a task nest under the task root, not the caller span,
      // and carry the pool_worker mark: their wall time is pool work too.
      EXPECT_EQ(span.depth, 1);
      EXPECT_TRUE(span.pool_worker);
    } else {
      ++caller_roots;
      EXPECT_EQ(span.name, "test.caller");
      EXPECT_EQ(span.depth, 0);
      EXPECT_FALSE(span.pool_worker);
    }
  }
  EXPECT_EQ(task_roots, 8u);
  EXPECT_EQ(inner, 8u);
  EXPECT_EQ(caller_roots, 1u);

  // Each inner span shares its task root's tid (per-worker attribution).
  std::map<int, int> open_root_tids;
  for (const SpanRecord& span : spans) {
    if (span.name == "pool.test_task") open_root_tids[span.tid]++;
  }
  for (const SpanRecord& span : spans) {
    if (span.name == "test.inner_work") {
      EXPECT_TRUE(open_root_tids.count(span.tid))
          << "inner span on tid " << span.tid << " has no task root";
    }
  }
}

TEST_F(TraceTest, PoolTaskScopeRestoresTheCallerSpanStack) {
  {
    MAROON_TRACE_SPAN("test.outer");
    ThreadPool pool(2);
    pool.ParallelFor(4, 2, [&](int /*strand*/, size_t /*i*/) {
      PoolTaskScope task("pool.test_task");
    });
    // After the section the caller's depth state must be back: this span is
    // a child of test.outer, not a root.
    { MAROON_TRACE_SPAN("test.after_section"); }
  }
  for (const SpanRecord& span : Tracer::Global().Snapshot()) {
    if (span.name == "test.after_section") {
      EXPECT_EQ(span.depth, 1);
    }
    if (span.name == "test.outer") {
      EXPECT_EQ(span.depth, 0);
    }
  }
}

TEST_F(TraceTest, RootSpanSecondsSkipsPoolTaskRoots) {
  {
    MAROON_TRACE_SPAN("test.caller");
    ThreadPool pool(4);
    pool.ParallelFor(16, 4, [&](int /*strand*/, size_t /*i*/) {
      PoolTaskScope task("pool.test_task");
    });
  }
  double caller_seconds = 0.0;
  for (const SpanRecord& span : Tracer::Global().Snapshot()) {
    if (span.name == "test.caller") caller_seconds = span.duration_us / 1e6;
  }
  // Worker roots overlap the caller span; counting them would double-bill
  // the same wall time. RootSpanSeconds must equal the caller span alone.
  EXPECT_DOUBLE_EQ(Tracer::Global().RootSpanSeconds(), caller_seconds);
}

TEST_F(TraceTest, ChromeTraceJsonTagsPoolWorkerSpans) {
  {
    ThreadPool pool(4);
    pool.ParallelFor(4, 4, [&](int /*strand*/, size_t /*i*/) {
      PoolTaskScope task("pool.test_task");
    });
    MAROON_TRACE_SPAN("test.plain");
  }
  auto parsed = ParseJson(Tracer::Global().ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 5u);
  for (const JsonValue& event : events->array) {
    const JsonValue* args = event.Find("args");
    if (event.Find("name")->string_value == "pool.test_task") {
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->Find("pool_worker")->number_value, 1.0);
    } else {
      EXPECT_EQ(args, nullptr);
    }
  }
}

class TraceRingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::SetEnabled(false);
    Tracer::SetRingEnabled(true);
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::SetRingEnabled(false);
    Tracer::SetEnabled(false);
  }
};

TEST_F(TraceRingTest, RingOnlyModeRecordsWithoutGrowingTheVector) {
  const uint64_t before = Tracer::RingSpanCount();
  { MAROON_TRACE_SPAN("test.ring_only"); }
  EXPECT_EQ(Tracer::RingSpanCount(), before + 1);
  // Full tracing stayed off: the accumulate-everything vector is untouched.
  EXPECT_EQ(Tracer::Global().span_count(), 0u);
  const std::vector<SpanRecord> spans = Tracer::RingSnapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.back().name, "test.ring_only");
  EXPECT_GE(spans.back().duration_us, 0.0);
}

TEST_F(TraceRingTest, RingRetainsOnlyTheMostRecentSpans) {
  const size_t total = Tracer::kRingCapacity + 50;
  for (size_t i = 0; i < total; ++i) {
    MAROON_TRACE_SPAN("test.ring_wrap");
  }
  const std::vector<SpanRecord> spans = Tracer::RingSnapshot();
  EXPECT_LE(spans.size(), Tracer::kRingCapacity);
  // The wrap evicted the oldest entries but kept the ring full (no published
  // slot is lost to a single-threaded writer).
  EXPECT_EQ(spans.size(), Tracer::kRingCapacity);
  // Oldest-first ordering: start times never go backwards.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_us, spans[i].start_us) << i;
  }
}

TEST_F(TraceRingTest, DisabledRingRecordsNothing) {
  Tracer::SetRingEnabled(false);
  const uint64_t before = Tracer::RingSpanCount();
  { MAROON_TRACE_SPAN("test.ring_disabled"); }
  EXPECT_EQ(Tracer::RingSpanCount(), before);
}

TEST_F(TraceRingTest, PoolTaskScopesLandInTheRing) {
  const uint64_t before = Tracer::RingSpanCount();
  {
    ThreadPool pool(2);
    pool.ParallelFor(4, 2, [&](int /*strand*/, size_t /*i*/) {
      PoolTaskScope task("pool.ring_task");
    });
  }
  EXPECT_EQ(Tracer::RingSpanCount(), before + 4);
  bool found = false;
  for (const SpanRecord& span : Tracer::RingSnapshot()) {
    if (span.name == "pool.ring_task") {
      found = true;
      EXPECT_TRUE(span.pool_worker);
      EXPECT_EQ(span.depth, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceRingTest, ConcurrentWritersAndReadersStayCoherent) {
  ThreadPool pool(4);
  pool.ParallelFor(4, 4, [](int /*strand*/, size_t i) {
    if (i == 0) {
      // One strand reads while the others push: every snapshot the reader
      // takes must contain only fully-published records.
      for (int iter = 0; iter < 200; ++iter) {
        for (const SpanRecord& span : Tracer::RingSnapshot()) {
          ASSERT_FALSE(span.name.empty());
          ASSERT_GE(span.duration_us, 0.0);
        }
      }
    } else {
      for (int iter = 0; iter < 500; ++iter) {
        MAROON_TRACE_SPAN("test.ring_race");
      }
    }
  });
  EXPECT_GE(Tracer::RingSpanCount(), 3u * 500u);
}

}  // namespace
}  // namespace obs
}  // namespace maroon
