#include "obs/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace maroon {
namespace obs {
namespace {

/// The documented relative error bound of the percentile estimate: half a
/// sub-bucket, i.e. 1 / (2 * kSubBuckets) (~0.78%), comfortably inside the
/// advertised 1%.
constexpr double kRelativeErrorBound =
    1.0 / (2.0 * LatencyHistogram::kSubBuckets);

class LatencyHistogramTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::SetEnabled(true); }
  void TearDown() override { MetricsRegistry::SetEnabled(true); }
};

TEST_F(LatencyHistogramTest, EmptySnapshotIsAllZero) {
  LatencyHistogram h;
  const LatencyHistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.P50(), 0.0);
  EXPECT_DOUBLE_EQ(s.P999(), 0.0);
  EXPECT_EQ(s.CountAtOrBelow(1.0), 0);
}

TEST_F(LatencyHistogramTest, SingleSampleReportsExactPercentiles) {
  LatencyHistogram h;
  h.Record(0.0042);
  const LatencyHistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.sum, 0.0042);
  EXPECT_DOUBLE_EQ(s.min, 0.0042);
  EXPECT_DOUBLE_EQ(s.max, 0.0042);
  // The [min, max] clamp makes every percentile exact for one sample.
  EXPECT_DOUBLE_EQ(s.P50(), 0.0042);
  EXPECT_DOUBLE_EQ(s.P99(), 0.0042);
  EXPECT_DOUBLE_EQ(s.P999(), 0.0042);
}

TEST_F(LatencyHistogramTest, DropsNegativeAndNonFiniteSamples) {
  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::nan(""));
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.Snapshot().count, 0);
  h.Record(0.0);  // zero is valid (clamps into the first bucket)
  EXPECT_EQ(h.Snapshot().count, 1);
}

TEST_F(LatencyHistogramTest, AllOverflowSamplesReportObservedMax) {
  LatencyHistogram h;
  h.Record(LatencyHistogram::kMaxSeconds * 2);
  h.Record(LatencyHistogram::kMaxSeconds * 4);
  const LatencyHistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.max, LatencyHistogram::kMaxSeconds * 4);
  // The percentile walk lands in the overflow bucket, whose midpoint sits
  // below every overflow sample; the [min, max] clamp pulls the estimate up
  // to the smallest observed overflow value instead of the bucket bound.
  EXPECT_DOUBLE_EQ(s.P99(), LatencyHistogram::kMaxSeconds * 2);
  // Overflow samples are not <= any finite bound...
  EXPECT_EQ(s.CountAtOrBelow(LatencyHistogram::kMaxSeconds), 0);
  // ...only the count (the +Inf bucket) covers them.
  EXPECT_EQ(s.count, 2);
}

TEST_F(LatencyHistogramTest, BucketIndexIsMonotoneAndBoundsAreConsistent) {
  int last = -1;
  for (double v = 1e-9; v < 20000.0; v *= 1.07) {
    const int index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(index, last) << "at v=" << v;
    last = index;
    if (index < LatencyHistogram::kNumBuckets) {
      // The value must not exceed its bucket's inclusive upper bound.
      EXPECT_LE(v, LatencyHistogram::BucketUpperBound(index) * (1 + 1e-12))
          << "at v=" << v;
    }
  }
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.0), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::kMaxSeconds),
            LatencyHistogram::kNumBuckets);
}

TEST_F(LatencyHistogramTest, UniformSamplesStayWithinErrorBound) {
  LatencyHistogram h;
  std::vector<double> samples;
  Random rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Uniform over [1ms, 101ms].
    const double v = 0.001 + 0.1 * rng.UniformDouble();
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const LatencyHistogramSnapshot s = h.Snapshot();
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = PercentileOfSorted(samples, q);
    const double estimate = s.Percentile(q);
    EXPECT_NEAR(estimate, exact, exact * (kRelativeErrorBound + 1e-3))
        << "q=" << q;
  }
}

TEST_F(LatencyHistogramTest, ExponentialSamplesStayWithinErrorBound) {
  LatencyHistogram h;
  std::vector<double> samples;
  Random rng(13);
  for (int i = 0; i < 20000; ++i) {
    // Exponential with a 2ms mean — a long-tailed latency shape.
    const double u = std::max(rng.UniformDouble(), 1e-12);
    const double v = -0.002 * std::log(u);
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const LatencyHistogramSnapshot s = h.Snapshot();
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = PercentileOfSorted(samples, q);
    const double estimate = s.Percentile(q);
    EXPECT_NEAR(estimate, exact, exact * (kRelativeErrorBound + 1e-3))
        << "q=" << q;
  }
}

TEST_F(LatencyHistogramTest, SumMinMaxAreExact) {
  LatencyHistogram h;
  h.Record(0.010);
  h.Record(0.001);
  h.Record(0.100);
  const LatencyHistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_NEAR(s.sum, 0.111, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.max, 0.100);
  EXPECT_NEAR(s.Mean(), 0.037, 1e-12);
}

TEST_F(LatencyHistogramTest, CountAtOrBelowIsCumulative) {
  LatencyHistogram h;
  h.Record(0.0001);
  h.Record(0.001);
  h.Record(0.01);
  const LatencyHistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.CountAtOrBelow(1e-5), 0);
  EXPECT_EQ(s.CountAtOrBelow(0.0005), 1);
  EXPECT_EQ(s.CountAtOrBelow(0.005), 2);
  EXPECT_EQ(s.CountAtOrBelow(1.0), 3);
}

TEST_F(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(0.5);
  h.Reset();
  const LatencyHistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  // And it keeps recording correctly afterwards.
  h.Record(0.25);
  EXPECT_DOUBLE_EQ(h.Snapshot().min, 0.25);
}

TEST_F(LatencyHistogramTest, DisabledRegistryDropsRecords) {
  LatencyHistogram h;
  MetricsRegistry::SetEnabled(false);
  h.Record(0.5);
  MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(h.Snapshot().count, 0);
}

TEST_F(LatencyHistogramTest, ConcurrentRecordsLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, kThreads, [&h](int /*strand*/, size_t i) {
    for (int k = 0; k < kPerThread; ++k) {
      h.Record(0.001 * static_cast<double>(i + 1));
    }
  });
  const LatencyHistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.max, 0.004);
  const double expected_sum =
      kPerThread * (0.001 + 0.002 + 0.003 + 0.004);
  EXPECT_NEAR(s.sum, expected_sum, expected_sum * 1e-9);
  int64_t bucket_total = 0;
  for (const int64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(PercentileOfSortedTest, InterpolatesAndHandlesEdges) {
  EXPECT_DOUBLE_EQ(PercentileOfSorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted({3.0}, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted({3.0}, 1.0), 3.0);
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.25), 2.0);
  // Interpolated rank: q=0.1 over 5 samples is rank 0.4 -> 1.4.
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.1), 1.4);
}

TEST_F(LatencyHistogramTest, RegistrySnapshotJsonCarriesPercentileDigest) {
  MetricsRegistry::Global().ResetAll();
  MAROON_LATENCY("maroon.test.latency_digest")->Record(0.002);
  MAROON_LATENCY("maroon.test.latency_digest")->Record(0.004);
  const std::string json = MetricsRegistry::Global().SnapshotJson();
  EXPECT_NE(json.find("\"latency_histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"maroon.test.latency_digest\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos) << json;
  MetricsRegistry::Global().ResetAll();
}

}  // namespace
}  // namespace obs
}  // namespace maroon
