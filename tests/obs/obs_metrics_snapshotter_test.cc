#include "obs/metrics_snapshotter.h"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace maroon {
namespace obs {
namespace {

class MetricsSnapshotterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    MetricsRegistry::Global().ResetAll();
    MetricsRegistry::SetEnabled(true);
  }
};

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST_F(MetricsSnapshotterTest, StopWritesFinalRowEvenForShortRuns) {
  const std::string path =
      ::testing::TempDir() + "/maroon_snapshotter_final.jsonl";
  MAROON_COUNTER("maroon.test.snap_rows")->Add(3);
  MetricsSnapshotWriterOptions options;
  options.path = path;
  options.period_s = 60.0;  // never fires within the test
  MetricsSnapshotWriter writer(options);
  writer.Stop();
  EXPECT_TRUE(writer.status().ok()) << writer.status();
  EXPECT_EQ(writer.rows_written(), 1);
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  auto row = ParseJson(lines[0]);
  ASSERT_TRUE(row.ok()) << row.status();
  const JsonValue* schema = row->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value, "maroon_metrics_snapshot_v1");
  const JsonValue* seq = row->Find("seq");
  ASSERT_NE(seq, nullptr);
  EXPECT_DOUBLE_EQ(seq->number_value, 0.0);
  const JsonValue* t_s = row->Find("t_s");
  ASSERT_NE(t_s, nullptr);
  EXPECT_GE(t_s->number_value, 0.0);
  const JsonValue* metrics = row->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* snap_rows = counters->Find("maroon.test.snap_rows");
  ASSERT_NE(snap_rows, nullptr);
  EXPECT_DOUBLE_EQ(snap_rows->number_value, 3.0);
}

TEST_F(MetricsSnapshotterTest, PeriodicRowsAccumulateWithAscendingSeq) {
  const std::string path =
      ::testing::TempDir() + "/maroon_snapshotter_periodic.jsonl";
  MetricsSnapshotWriterOptions options;
  options.path = path;
  options.period_s = 0.02;
  MetricsSnapshotWriter writer(options);
  // Wait for at least two periodic ticks, then stop (one more final row).
  while (writer.rows_written() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  writer.Stop();
  EXPECT_TRUE(writer.status().ok()) << writer.status();
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(writer.rows_written(), static_cast<int64_t>(lines.size()));
  double last_t = -1.0;
  for (size_t i = 0; i < lines.size(); ++i) {
    auto row = ParseJson(lines[i]);
    ASSERT_TRUE(row.ok()) << "line " << i << ": " << row.status();
    const JsonValue* seq = row->Find("seq");
    ASSERT_NE(seq, nullptr) << "line " << i;
    EXPECT_DOUBLE_EQ(seq->number_value, static_cast<double>(i));
    const JsonValue* t_s = row->Find("t_s");
    ASSERT_NE(t_s, nullptr) << "line " << i;
    EXPECT_GE(t_s->number_value, last_t) << "line " << i;
    last_t = t_s->number_value;
  }
}

TEST_F(MetricsSnapshotterTest, StopIsIdempotent) {
  const std::string path =
      ::testing::TempDir() + "/maroon_snapshotter_idempotent.jsonl";
  MetricsSnapshotWriterOptions options;
  options.path = path;
  options.period_s = 60.0;
  MetricsSnapshotWriter writer(options);
  writer.Stop();
  writer.Stop();
  EXPECT_EQ(writer.rows_written(), 1);
  EXPECT_EQ(ReadLines(path).size(), 1u);
}

TEST_F(MetricsSnapshotterTest, UnwritablePathLatchesErrorStatus) {
  MetricsSnapshotWriterOptions options;
  options.path = "/nonexistent-dir/maroon_snapshotter.jsonl";
  options.period_s = 60.0;
  MetricsSnapshotWriter writer(options);
  writer.Stop();
  EXPECT_FALSE(writer.status().ok());
  EXPECT_EQ(writer.rows_written(), 0);
}

TEST(PeriodicTimerTest, TicksAdvanceAndStopJoins) {
  std::atomic<int> fired{0};
  PeriodicTimer timer(std::chrono::milliseconds(10),
                      [&fired] { fired.fetch_add(1); });
  while (timer.ticks() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  timer.Stop();
  const int after_stop = fired.load();
  EXPECT_GE(after_stop, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // No further callbacks after Stop() returned.
  EXPECT_EQ(fired.load(), after_stop);
  timer.Stop();  // idempotent
}

TEST(PeriodicTimerTest, StopBeforeFirstTickRunsNoCallback) {
  std::atomic<int> fired{0};
  {
    PeriodicTimer timer(std::chrono::minutes(10),
                        [&fired] { fired.fetch_add(1); });
    // Destructor stops; the first period never elapses.
  }
  EXPECT_EQ(fired.load(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace maroon
