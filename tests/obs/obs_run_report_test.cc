#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {
namespace obs {
namespace {

std::string GoldenPath() {
  return std::string(MAROON_SOURCE_DIR) +
         "/tests/obs/testdata/run_report_golden.json";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Registers the fixed metric set every test in this binary works against,
/// so the registry snapshot stays deterministic regardless of test order.
RunReportOptions PrepareFixedRunState() {
  MetricsRegistry::SetEnabled(true);
  MetricsRegistry::Global().ResetAll();
  Tracer::SetEnabled(false);
  Tracer::Global().Clear();
  MAROON_COUNTER("maroon.test.records")->Add(42);
  MAROON_GAUGE("maroon.test.mean_delay")->Set(1.5);
  Histogram* h = MAROON_HISTOGRAM("maroon.test.score",
                                  (std::vector<double>{0.5, 1.0}));
  h->Record(0.25);
  h->Record(0.75);
  LatencyHistogram* latency = MAROON_LATENCY("maroon.test.link_seconds");
  latency->Record(0.001);
  latency->Record(0.002);
  RunReportOptions options;
  options.config = {{"command", "link"}, {"data", "corpus/"}};
  options.include_timestamp = false;
  return options;
}

TEST(RunReportTest, MatchesGoldenFile) {
  const RunReportOptions options = PrepareFixedRunState();
  const std::string json = BuildRunReportJson(options) + "\n";
  // Regenerate with MAROON_REGEN_GOLDEN=1 after intentional schema changes.
  const char* regen = std::getenv("MAROON_REGEN_GOLDEN");
  if (regen != nullptr && *regen != '\0') {
    ASSERT_TRUE(WriteTextFile(GoldenPath(), json).ok());
  }
  EXPECT_EQ(json, ReadFileOrEmpty(GoldenPath()));
}

TEST(RunReportTest, JsonRoundTripsThroughParser) {
  const RunReportOptions options = PrepareFixedRunState();
  auto parsed = ParseJson(BuildRunReportJson(options));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("schema")->string_value, "maroon_run_report_v1");
  EXPECT_EQ(parsed->Find("generated_at")->string_value, "");
  const JsonValue* config = parsed->Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->Find("command")->string_value, "link");
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(
      metrics->Find("counters")->Find("maroon.test.records")->number_value,
      42.0);
  const JsonValue* hist =
      metrics->Find("histograms")->Find("maroon.test.score");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number_value, 2.0);
  const JsonValue* latency =
      metrics->Find("latency_histograms")->Find("maroon.test.link_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->Find("count")->number_value, 2.0);
  EXPECT_DOUBLE_EQ(latency->Find("max")->number_value, 0.002);
  ASSERT_NE(latency->Find("p999"), nullptr);
  const JsonValue* trace = parsed->Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_FALSE(trace->Find("enabled")->bool_value);
  EXPECT_DOUBLE_EQ(trace->Find("span_count")->number_value, 0.0);
}

TEST(RunReportTest, TimestampedReportCarriesIso8601Stamp) {
  RunReportOptions options = PrepareFixedRunState();
  options.include_timestamp = true;
  auto parsed = ParseJson(BuildRunReportJson(options));
  ASSERT_TRUE(parsed.ok());
  const std::string& stamp = parsed->Find("generated_at")->string_value;
  ASSERT_EQ(stamp.size(), 20u);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp[19], 'Z');
}

TEST(RunReportTest, TextRenderingListsNonZeroCountersAndTrace) {
  const RunReportOptions options = PrepareFixedRunState();
  MAROON_COUNTER("maroon.test.silent")->Add(0);
  const std::string text = RenderRunReportText(options);
  EXPECT_NE(text.find("== MAROON run report =="), std::string::npos);
  EXPECT_NE(text.find("command = link"), std::string::npos);
  EXPECT_NE(text.find("maroon.test.records = 42"), std::string::npos);
  // Zero-valued counters are elided from the table.
  EXPECT_EQ(text.find("maroon.test.silent"), std::string::npos);
  EXPECT_NE(text.find("maroon.test.score: count=2"), std::string::npos);
  // Latency histograms render a percentile row in milliseconds.
  EXPECT_NE(text.find("latency (ms):"), std::string::npos) << text;
  EXPECT_NE(text.find("maroon.test.link_seconds: count=2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("p999="), std::string::npos) << text;
  EXPECT_NE(text.find("disabled"), std::string::npos);
}

TEST(RunReportTest, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/run_report_io_test.json";
  const std::string content = "{\"a\": 1}\n";
  ASSERT_TRUE(WriteTextFile(path, content).ok());
  EXPECT_EQ(ReadFileOrEmpty(path), content);
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x/y.json", content).ok());
}

}  // namespace
}  // namespace obs
}  // namespace maroon
