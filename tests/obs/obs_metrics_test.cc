#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace maroon {
namespace obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override { MetricsRegistry::SetEnabled(true); }
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Record(0.5);  // bucket 0: v <= 1
  h.Record(1.0);  // bucket 0: boundary values land in their own bucket
  h.Record(1.5);  // bucket 1
  h.Record(4.0);  // bucket 2
  h.Record(4.5);  // overflow
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(s.counts, (std::vector<int64_t>{2, 1, 1, 1}));
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.sum, 11.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.3);
}

TEST_F(MetricsTest, HistogramOverflowBucketCatchesEverythingAbove) {
  Histogram h({1.0});
  h.Record(1000.0);
  h.Record(1e9);
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 2u);
  EXPECT_EQ(s.counts[0], 0);
  EXPECT_EQ(s.counts[1], 2);
}

TEST_F(MetricsTest, HistogramResetZeroesStateButKeepsBounds) {
  Histogram h({1.0, 2.0});
  h.Record(0.5);
  h.Reset();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.counts, (std::vector<int64_t>{0, 0, 0}));
  EXPECT_EQ(s.bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST_F(MetricsTest, CanonicalBucketShapes) {
  EXPECT_EQ(UnitIntervalBuckets().size(), 20u);
  EXPECT_DOUBLE_EQ(UnitIntervalBuckets().front(), 0.05);
  EXPECT_DOUBLE_EQ(UnitIntervalBuckets().back(), 1.0);
  EXPECT_EQ(SmallCountBuckets().front(), 1.0);
  EXPECT_EQ(SmallCountBuckets().back(), 1024.0);
  EXPECT_EQ(LatencySecondsBuckets().size(), 11u);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsLoseNothing) {
  Counter* c = MAROON_COUNTER("maroon.test.concurrent_counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;  // maroon-lint: allow(R008)
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (std::thread& t : threads) t.join();  // maroon-lint: allow(R008)
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, ConcurrentHistogramRecordsLoseNothing) {
  Histogram h({0.5, 1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;  // maroon-lint: allow(R008)
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      const double value = (t % 2 == 0) ? 0.25 : 0.75;
      for (int i = 0; i < kPerThread; ++i) h.Record(value);
    });
  }
  for (std::thread& t : threads) t.join();  // maroon-lint: allow(R008)
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.counts[0], kThreads / 2 * kPerThread);
  EXPECT_EQ(s.counts[1], kThreads / 2 * kPerThread);
  EXPECT_EQ(s.counts[2], 0);
}

TEST_F(MetricsTest, RegistryReturnsStablePointersPerName) {
  Counter* a = MAROON_COUNTER("maroon.test.stable");
  Counter* b = MAROON_COUNTER("maroon.test.stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MAROON_COUNTER("maroon.test.other"));
  Histogram* h1 =
      MAROON_HISTOGRAM("maroon.test.hist", (std::vector<double>{1.0, 2.0}));
  // Bounds of an existing histogram are immutable; the second registration's
  // bounds are ignored.
  Histogram* h2 = MAROON_HISTOGRAM("maroon.test.hist", {99.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->Snapshot().bounds, (std::vector<double>{1.0, 2.0}));
}

TEST_F(MetricsTest, DisabledRegistryDropsMutations) {
  Counter* c = MAROON_COUNTER("maroon.test.disabled");
  Gauge* g = MAROON_GAUGE("maroon.test.disabled_gauge");
  Histogram* h = MAROON_HISTOGRAM("maroon.test.disabled_hist", {1.0});
  MetricsRegistry::SetEnabled(false);
  c->Add(5);
  g->Set(5.0);
  h->Record(0.5);
  MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(c->value(), 0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->Snapshot().count, 0);
}

TEST_F(MetricsTest, ResetAllZeroesEveryRegisteredMetric) {
  Counter* c = MAROON_COUNTER("maroon.test.reset_counter");
  Gauge* g = MAROON_GAUGE("maroon.test.reset_gauge");
  Histogram* h = MAROON_HISTOGRAM("maroon.test.reset_hist", {1.0});
  c->Add(3);
  g->Set(3.0);
  h->Record(0.5);
  MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(c->value(), 0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->Snapshot().count, 0);
}

TEST_F(MetricsTest, SnapshotJsonIsValidAndComplete) {
  MAROON_COUNTER("maroon.test.json_counter")->Add(7);
  MAROON_GAUGE("maroon.test.json_gauge")->Set(0.25);
  Histogram* h = MAROON_HISTOGRAM("maroon.test.json_hist",
                                  (std::vector<double>{0.5, 1.0}));
  h->Record(0.4);
  h->Record(0.9);
  auto parsed = ParseJson(MetricsRegistry::Global().SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* counter =
      parsed->Find("counters")->Find("maroon.test.json_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->number_value, 7.0);
  const JsonValue* gauge =
      parsed->Find("gauges")->Find("maroon.test.json_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->number_value, 0.25);
  const JsonValue* hist =
      parsed->Find("histograms")->Find("maroon.test.json_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number_value, 2.0);
  ASSERT_EQ(hist->Find("counts")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(hist->Find("counts")->array[0].number_value, 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("counts")->array[1].number_value, 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("mean")->number_value, 0.65);
}

}  // namespace
}  // namespace obs
}  // namespace maroon
