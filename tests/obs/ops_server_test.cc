#include "obs/ops_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/http_client.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace maroon {
namespace obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class OpsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
    HealthRegistry::Global().Clear();
    Tracer::SetRingEnabled(false);
  }
  void TearDown() override {
    Tracer::SetRingEnabled(false);
    HealthRegistry::Global().Clear();
    MetricsRegistry::Global().ResetAll();
  }

  std::unique_ptr<OpsServer> StartServer() {
    OpsServerOptions options;
    options.http.port = 0;
    options.statusz_config = {{"command", "test"}, {"data", "/tmp/x"}};
    auto server = OpsServer::Start(std::move(options));
    EXPECT_TRUE(server.ok()) << server.status();
    return server.ok() ? std::move(server.value()) : nullptr;
  }

  static net::HttpRequest Get(const std::string& path) {
    net::HttpRequest request;
    request.method = "GET";
    request.target = path;
    request.path = path;
    return request;
  }
};

TEST_F(OpsServerTest, MetricsRouteRendersPrometheusAndLintsClean) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  MAROON_COUNTER("maroon.test.ops_counter")->Add(3);
  MAROON_LATENCY("maroon.test.ops_seconds")->Record(0.002);
  const net::HttpResponse response = server->Handle(Get("/metrics"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type,
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_TRUE(Contains(response.body, "maroon_test_ops_counter 3\n"))
      << response.body;
  // Start() registered the build metrics.
  EXPECT_TRUE(Contains(response.body, "maroon_build_info{version="))
      << response.body;
  EXPECT_TRUE(Contains(response.body, "maroon_uptime_seconds"))
      << response.body;
  // The exposition passes the exporter lint — the same check CI's
  // ops-smoke job runs against a live scrape.
  const auto problems = PrometheusLint(response.body);
  EXPECT_TRUE(problems.empty())
      << problems.size() << " problems, first: " << problems.front();
}

TEST_F(OpsServerTest, MetricsRouteCountsScrapes) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  (void)server->Handle(Get("/metrics"));
  const net::HttpResponse second = server->Handle(Get("/metrics"));
  // The first scrape's counter increment is visible by the second scrape.
  EXPECT_TRUE(Contains(second.body, "maroon_ops_scrapes 1\n")) << second.body;
}

TEST_F(OpsServerTest, VarzRendersTheJsonSnapshot) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  MAROON_COUNTER("maroon.test.varz_counter")->Add(9);
  const net::HttpResponse response = server->Handle(Get("/varz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json; charset=utf-8");
  EXPECT_TRUE(Contains(response.body, "\"maroon.test.varz_counter\": 9"))
      << response.body;
}

TEST_F(OpsServerTest, HealthzReflectsTheRegistry) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  HealthRegistry::Global().Set("wal", HealthState::kOk);
  net::HttpResponse response = server->Handle(Get("/healthz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(Contains(response.body, "\"overall\": \"OK\"")) << response.body;

  // DEGRADED still answers 200: restarting would not help.
  HealthRegistry::Global().Set("memory", HealthState::kDegraded, "at bound");
  response = server->Handle(Get("/healthz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(Contains(response.body, "\"overall\": \"DEGRADED\""))
      << response.body;
  EXPECT_TRUE(Contains(response.body, "\"detail\": \"at bound\""))
      << response.body;

  HealthRegistry::Global().Set("wal", HealthState::kUnhealthy,
                               "latched: IOError");
  response = server->Handle(Get("/healthz"));
  EXPECT_EQ(response.status, 503);
  EXPECT_TRUE(Contains(response.body, "\"overall\": \"UNHEALTHY\""))
      << response.body;
}

TEST_F(OpsServerTest, ReadyzDemandsReadyAndFullyHealthy) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->Handle(Get("/readyz")).status, 503);  // not marked ready
  HealthRegistry::Global().SetReady(true);
  EXPECT_EQ(server->Handle(Get("/readyz")).status, 200);
  // DEGRADED fails readiness even though /healthz still answers 200.
  HealthRegistry::Global().Set("memory", HealthState::kDegraded, "at bound");
  EXPECT_EQ(server->Handle(Get("/readyz")).status, 503);
}

TEST_F(OpsServerTest, StatuszCarriesBuildConfigAndServerStats) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const net::HttpResponse response = server->Handle(Get("/statusz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(Contains(response.body, "\"version\": \"")) << response.body;
  EXPECT_TRUE(Contains(response.body, "\"revision\": \"")) << response.body;
  EXPECT_TRUE(Contains(response.body, "\"uptime_s\": ")) << response.body;
  EXPECT_TRUE(Contains(response.body, "\"command\": \"test\""))
      << response.body;
  EXPECT_TRUE(Contains(response.body, "\"data\": \"/tmp/x\""))
      << response.body;
  EXPECT_TRUE(Contains(response.body, "\"accepted\": ")) << response.body;
}

TEST_F(OpsServerTest, TracezRendersTheRing) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  net::HttpResponse response = server->Handle(Get("/tracez"));
  EXPECT_TRUE(Contains(response.body, "\"ring_enabled\": false"))
      << response.body;

  Tracer::SetRingEnabled(true);
  { MAROON_TRACE_SPAN("test.tracez_span"); }
  response = server->Handle(Get("/tracez"));
  EXPECT_TRUE(Contains(response.body, "\"ring_enabled\": true"))
      << response.body;
  EXPECT_TRUE(Contains(response.body, "\"name\": \"test.tracez_span\""))
      << response.body;
  // Handle() itself opens an "ops.request" span, which lands in the ring.
  response = server->Handle(Get("/tracez"));
  EXPECT_TRUE(Contains(response.body, "\"name\": \"ops.request\""))
      << response.body;
}

TEST_F(OpsServerTest, UnknownRouteIs404AndIndexListsRoutes) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->Handle(Get("/nope")).status, 404);
  const net::HttpResponse index = server->Handle(Get("/"));
  EXPECT_EQ(index.status, 200);
  EXPECT_TRUE(Contains(index.body, "/metrics")) << index.body;
  EXPECT_TRUE(Contains(index.body, "/healthz")) << index.body;
  EXPECT_TRUE(Contains(index.body, "/tracez")) << index.body;
}

TEST_F(OpsServerTest, EndToEndOverARealSocket) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_GT(server->port(), 0);
  MAROON_COUNTER("maroon.test.e2e_counter")->Add(5);
  auto response = net::HttpGet("127.0.0.1", server->port(), "/metrics");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  EXPECT_TRUE(Contains(response->body, "maroon_test_e2e_counter 5\n"))
      << response->body;
  auto healthz = net::HttpGet("127.0.0.1", server->port(), "/healthz");
  ASSERT_TRUE(healthz.ok()) << healthz.status();
  EXPECT_EQ(healthz->status, 200);
  server->Stop();
  EXPECT_GE(server->http_stats().served, 2);
}

}  // namespace
}  // namespace obs
}  // namespace maroon
