#include "obs/health.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/thread_pool.h"

namespace maroon {
namespace obs {
namespace {

class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override { HealthRegistry::Global().Clear(); }
  void TearDown() override { HealthRegistry::Global().Clear(); }
};

TEST_F(HealthTest, EmptyRegistryIsHealthyButNotReady) {
  HealthRegistry& health = HealthRegistry::Global();
  EXPECT_EQ(health.Overall(), HealthState::kOk);
  EXPECT_FALSE(health.ready());
  EXPECT_TRUE(health.Components().empty());
}

TEST_F(HealthTest, OverallIsTheWorstComponentState) {
  HealthRegistry& health = HealthRegistry::Global();
  health.Set("wal", HealthState::kOk);
  EXPECT_EQ(health.Overall(), HealthState::kOk);
  health.Set("backpressure", HealthState::kDegraded, "queue 900/1024");
  EXPECT_EQ(health.Overall(), HealthState::kDegraded);
  health.Set("wal", HealthState::kUnhealthy, "latched: IOError");
  EXPECT_EQ(health.Overall(), HealthState::kUnhealthy);
  // Recovery: the worst component going back to OK downgrades the overall.
  health.Set("wal", HealthState::kOk);
  EXPECT_EQ(health.Overall(), HealthState::kDegraded);
}

TEST_F(HealthTest, SetReplacesAComponentsStateAndDetail) {
  HealthRegistry& health = HealthRegistry::Global();
  health.Set("snapshot", HealthState::kDegraded, "3 write failures");
  health.Set("snapshot", HealthState::kOk);
  const auto components = health.Components();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components.at("snapshot").state, HealthState::kOk);
  EXPECT_EQ(components.at("snapshot").detail, "");
}

TEST_F(HealthTest, ComponentsReportAge) {
  HealthRegistry& health = HealthRegistry::Global();
  health.Set("wal", HealthState::kOk);
  const auto components = health.Components();
  ASSERT_EQ(components.count("wal"), 1u);
  EXPECT_GE(components.at("wal").age_s, 0.0);
  EXPECT_LT(components.at("wal").age_s, 60.0);
}

TEST_F(HealthTest, ReadyFlagRoundTrips) {
  HealthRegistry& health = HealthRegistry::Global();
  EXPECT_FALSE(health.ready());
  health.SetReady(true);
  EXPECT_TRUE(health.ready());
  health.SetReady(false);
  EXPECT_FALSE(health.ready());
}

TEST_F(HealthTest, StateNamesAreStable) {
  EXPECT_STREQ(HealthStateName(HealthState::kOk), "OK");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "DEGRADED");
  EXPECT_STREQ(HealthStateName(HealthState::kUnhealthy), "UNHEALTHY");
}

TEST_F(HealthTest, ConcurrentReportersAndReadersAreSafe) {
  HealthRegistry& health = HealthRegistry::Global();
  std::atomic<int> worst_seen{0};
  ThreadPool pool(4);
  pool.ParallelFor(200, 4, [&health, &worst_seen](int strand, size_t i) {
    const std::string component = "c" + std::to_string(strand);
    health.Set(component,
               i % 3 == 0 ? HealthState::kDegraded : HealthState::kOk,
               "iteration " + std::to_string(i));
    const HealthState overall = health.Overall();
    int expected = worst_seen.load(std::memory_order_relaxed);
    while (static_cast<int>(overall) > expected &&
           !worst_seen.compare_exchange_weak(
               expected, static_cast<int>(overall),
               std::memory_order_relaxed)) {
    }
    (void)health.Components();
  });
  // Nothing ever reported UNHEALTHY.
  EXPECT_LE(worst_seen.load(), static_cast<int>(HealthState::kDegraded));
}

}  // namespace
}  // namespace obs
}  // namespace maroon
