#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace maroon {
namespace obs {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonNumberTest, IntegralValuesPrintWithoutExponent) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-7.0), "-7");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
}

TEST(JsonNumberTest, NonFiniteValuesBecomeNull) {
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(HUGE_VAL), "null");
  EXPECT_EQ(JsonNumber(-HUGE_VAL), "null");
}

TEST(JsonWriterTest, NestedScopesPlaceCommasAutomatically) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray();
  w.Int(1).Int(2).String("x");
  w.EndArray();
  w.Key("c").BeginObject();
  w.Key("nested").Bool(true);
  w.Key("gone").Null();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.text(),
            "{\"a\": 1, \"b\": [1, 2, \"x\"], "
            "\"c\": {\"nested\": true, \"gone\": null}}");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("o").BeginObject().EndObject();
  w.Key("a").BeginArray().EndArray();
  w.EndObject();
  EXPECT_EQ(w.text(), "{\"o\": {}, \"a\": []}");
}

TEST(JsonParseTest, ParsesScalars) {
  auto number = ParseJson(" 42 ");
  ASSERT_TRUE(number.ok());
  EXPECT_TRUE(number->is_number());
  EXPECT_DOUBLE_EQ(number->number_value, 42.0);

  auto truth = ParseJson("true");
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(truth->bool_value);

  auto nothing = ParseJson("null");
  ASSERT_TRUE(nothing.ok());
  EXPECT_EQ(nothing->kind, JsonValue::Kind::kNull);

  auto text = ParseJson("\"he\\nllo \\u0041\"");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->string_value, "he\nllo A");
}

TEST(JsonParseTest, ParsesNestedDocument) {
  auto parsed = ParseJson(
      "{\"counters\": {\"maroon.phase1.clusters_formed\": 13},"
      " \"values\": [1, 2.5, -3e2]}");
  ASSERT_TRUE(parsed.ok());
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* formed = counters->Find("maroon.phase1.clusters_formed");
  ASSERT_NE(formed, nullptr);
  EXPECT_DOUBLE_EQ(formed->number_value, 13.0);
  const JsonValue* values = parsed->Find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->array.size(), 3u);
  EXPECT_DOUBLE_EQ(values->array[2].number_value, -300.0);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1,}").ok());
}

TEST(JsonParseTest, WriterOutputRoundTrips) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("phase1.partition");
  w.Key("quoted \"key\"").String("line\nbreak");
  w.Key("count").Int(1234);
  w.Key("share").Number(0.375);
  w.EndObject();
  auto parsed = ParseJson(w.text());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("name")->string_value, "phase1.partition");
  EXPECT_EQ(parsed->Find("quoted \"key\"")->string_value, "line\nbreak");
  EXPECT_DOUBLE_EQ(parsed->Find("count")->number_value, 1234.0);
  EXPECT_DOUBLE_EQ(parsed->Find("share")->number_value, 0.375);
}

}  // namespace
}  // namespace obs
}  // namespace maroon
