#include <gtest/gtest.h>

#include "datagen/recruitment_generator.h"
#include "freshness/freshness_model.h"
#include "matching/maroon.h"
#include "testing/paper_example.h"
#include "transition/transition_model.h"

namespace maroon {
namespace {

using testing::kTitle;

TEST(TransitionPersistenceTest, RoundTripPreservesProbabilities) {
  const TransitionModel original = TransitionModel::Train(
      testing::CareerTrainingProfiles(), {kTitle});
  auto restored = TransitionModel::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->MaxLifespan(kTitle), original.MaxLifespan(kTitle));
  EXPECT_EQ(restored->DeltasFor(kTitle), original.DeltasFor(kTitle));
  // Spot-check seen, smoothed, and clamped probabilities.
  const std::vector<std::pair<Value, Value>> pairs = {
      {"Engineer", "Manager"}, {"Manager", "Director"},
      {"Manager", "IT Contractor"}, {"CEO", "VP"}, {"CEO", "CEO"}};
  for (const auto& [from, to] : pairs) {
    for (int64_t dt : {1, 3, 5, 8, 20}) {
      EXPECT_DOUBLE_EQ(restored->Probability(kTitle, from, to, dt),
                       original.Probability(kTitle, from, to, dt))
          << from << "->" << to << " dt=" << dt;
    }
  }
  EXPECT_EQ(restored->ValueFrequency(kTitle, "Manager"),
            original.ValueFrequency(kTitle, "Manager"));
}

TEST(TransitionPersistenceTest, OptionsAreRestored) {
  TransitionModelOptions options;
  options.min_value_frequency = 7;
  options.include_zero_delta_terms = true;
  options.cap_unseen_by_support = false;
  const TransitionModel original = TransitionModel::Train(
      testing::CareerTrainingProfiles(), {kTitle}, options);
  auto restored = TransitionModel::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->options().min_value_frequency, 7);
  EXPECT_TRUE(restored->options().include_zero_delta_terms);
  EXPECT_FALSE(restored->options().cap_unseen_by_support);
}

TEST(TransitionPersistenceTest, RejectsGarbage) {
  EXPECT_FALSE(TransitionModel::Deserialize("not a model").ok());
  EXPECT_FALSE(TransitionModel::Deserialize("").ok());
  EXPECT_FALSE(TransitionModel::Deserialize(
                   "format,maroon_transition_model_v1\nbogus,row\n")
                   .ok());
  EXPECT_FALSE(
      TransitionModel::Deserialize(
          "format,maroon_transition_model_v1\nentry,T,notanumber,a,b,1\n")
          .ok());
}

TEST(FreshnessPersistenceTest, RoundTripPreservesDelays) {
  const Dataset dataset = testing::PaperRecords();
  const FreshnessModel original =
      FreshnessModel::Train(dataset, {"david_1"});
  auto restored = FreshnessModel::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  for (SourceId s = 0; s < 3; ++s) {
    for (const Attribute& a : testing::PaperAttributes()) {
      for (int64_t eta : {0, 1, 2, 3, 10}) {
        EXPECT_DOUBLE_EQ(restored->Delay(eta, s, a), original.Delay(eta, s, a))
            << "s=" << s << " a=" << a << " eta=" << eta;
      }
      EXPECT_EQ(restored->ObservationCount(s, a),
                original.ObservationCount(s, a));
    }
  }
}

TEST(FreshnessPersistenceTest, EpochDistributionsSurvive) {
  FreshnessModelOptions options;
  options.epoch_width = 10;
  options.min_epoch_observations = 2;
  FreshnessModel original(options);
  for (int i = 0; i < 4; ++i) original.AddObservation(0, "T", 0, 2003);
  for (int i = 0; i < 4; ++i) original.AddObservation(0, "T", 3, 2015);
  original.Finalize();

  auto restored = FreshnessModel::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->Delay(0, 0, "T", 2003), 1.0);
  EXPECT_DOUBLE_EQ(restored->Delay(3, 0, "T", 2015), 1.0);
  EXPECT_EQ(restored->EpochObservationCount(0, "T", 2003), 4);
}

TEST(FreshnessPersistenceTest, RejectsGarbage) {
  EXPECT_FALSE(FreshnessModel::Deserialize("junk").ok());
  EXPECT_FALSE(FreshnessModel::Deserialize(
                   "format,maroon_freshness_model_v1\ndelay,x,T,0,1\n")
                   .ok());
}

TEST(ModelPersistenceTest, RestoredModelsDriveIdenticalLinkage) {
  // The full pipeline produces identical results with restored models.
  RecruitmentOptions data_options;
  data_options.seed = 61;
  data_options.num_entities = 25;
  data_options.num_names = 10;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);
  ProfileSet profiles;
  std::vector<EntityId> ids;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
    ids.push_back(id);
  }
  const TransitionModel transition =
      TransitionModel::Train(profiles, dataset.attributes());
  const FreshnessModel freshness = FreshnessModel::Train(dataset, ids);

  auto transition2 = TransitionModel::Deserialize(transition.Serialize());
  auto freshness2 = FreshnessModel::Deserialize(freshness.Serialize());
  ASSERT_TRUE(transition2.ok());
  ASSERT_TRUE(freshness2.ok());

  SimilarityCalculator similarity;
  MaroonOptions options;
  options.matcher.single_valued_attributes = dataset.attributes();
  Maroon a(&transition, &freshness, &similarity, dataset.attributes(),
           options);
  Maroon b(&*transition2, &*freshness2, &similarity, dataset.attributes(),
           options);

  const EntityId& entity = ids.front();
  const auto target = dataset.target(entity);
  ASSERT_TRUE(target.ok()) << target.status();
  std::vector<const TemporalRecord*> candidates;
  for (RecordId rid : dataset.CandidatesFor(entity)) {
    candidates.push_back(&dataset.record(rid));
  }
  const LinkResult ra = a.Link((*target)->clean_profile, candidates);
  const LinkResult rb = b.Link((*target)->clean_profile, candidates);
  EXPECT_EQ(ra.match.matched_records, rb.match.matched_records);
  EXPECT_EQ(ra.match.augmented_profile.ToString(),
            rb.match.augmented_profile.ToString());
}

}  // namespace
}  // namespace maroon
