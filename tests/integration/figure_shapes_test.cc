#include <gtest/gtest.h>

#include <map>

#include "datagen/dblp_generator.h"
#include "datagen/recruitment_generator.h"
#include "transition/transition_model.h"

namespace maroon {
namespace {

/// Asserts the qualitative trends of the paper's Figure 3 and Table 7 as
/// regression tests: the learnt transition probabilities must keep these
/// shapes whatever else changes in the generators or the model.
class FigureShapesTest : public ::testing::Test {
 protected:
  static ProfileSet RecruitmentProfiles() {
    RecruitmentOptions options;
    options.seed = 2015;
    options.num_entities = 300;
    options.num_names = 100;
    const Dataset dataset = GenerateRecruitmentDataset(options);
    ProfileSet profiles;
    for (const auto& [id, target] : dataset.targets()) {
      profiles.push_back(target.ground_truth);
    }
    return profiles;
  }
};

TEST_F(FigureShapesTest, Table7SeniorityAndPromotionShapes) {
  const TransitionModel model =
      TransitionModel::Train(RecruitmentProfiles(), {kAttrTitle});

  // Self-transitions decay with Δt for every rung of the ladder.
  for (const auto* title : {"Engineer", "Manager", "Director"}) {
    EXPECT_GT(model.Probability(kAttrTitle, title, title, 3),
              model.Probability(kAttrTitle, title, title, 10))
        << title;
  }
  // Senior titles persist longer (paper: ~2x at Δt = 5).
  const double director5 =
      model.Probability(kAttrTitle, "Director", "Director", 5);
  const double engineer5 =
      model.Probability(kAttrTitle, "Engineer", "Engineer", 5);
  EXPECT_GT(director5, 1.5 * engineer5);
  // Promotions beat odd moves at every horizon the paper tabulates.
  for (int64_t dt : {3, 5, 8, 10}) {
    EXPECT_GT(model.Probability(kAttrTitle, "Manager", "Director", dt),
              model.Probability(kAttrTitle, "Manager", "Consultant", dt))
        << "dt=" << dt;
  }
  // Engineer -> Manager grows with time (careers take years).
  EXPECT_GT(model.Probability(kAttrTitle, "Engineer", "Manager", 8),
            model.Probability(kAttrTitle, "Engineer", "Manager", 3));
}

TEST_F(FigureShapesTest, Figure3AffiliationTrends) {
  DblpOptions options;
  options.seed = 2015;
  const DblpCorpus corpus = GenerateDblpCorpus(options);
  ProfileSet profiles;
  for (const auto& [id, target] : corpus.dataset.targets()) {
    profiles.push_back(target.ground_truth);
  }
  const TransitionModel model =
      TransitionModel::Train(profiles, {kAttrAffiliation});
  const TableValueMapper& category = *corpus.affiliation_category_mapper;

  // Aggregate category-level probabilities from the raw tables.
  const auto series = [&](int64_t dt) {
    std::map<std::string, double> counts;
    double from_univ = 0, from_ind = 0;
    const TransitionTable* table = model.table(kAttrAffiliation, dt);
    EXPECT_NE(table, nullptr) << "dt=" << dt;
    if (table == nullptr) return counts;
    for (const auto& [from, to, count] : table->Entries()) {
      const bool fu = category.Map(kAttrAffiliation, from) == "university";
      const bool tu = category.Map(kAttrAffiliation, to) == "university";
      (fu ? from_univ : from_ind) += static_cast<double>(count);
      if (from == to) {
        counts[fu ? "same_univ" : "same_company"] +=
            static_cast<double>(count);
      } else if (fu && tu) {
        counts["univ_univ"] += static_cast<double>(count);
      } else if (fu) {
        counts["univ_ind"] += static_cast<double>(count);
      } else if (tu) {
        counts["ind_univ"] += static_cast<double>(count);
      }
    }
    for (auto& [key, value] : counts) {
      value /= (key == "same_company" || key == "ind_univ") ? from_ind
                                                            : from_univ;
    }
    return counts;
  };

  auto early = series(2);
  auto late = series(12);
  // Same university: high early, decreasing over time.
  EXPECT_GT(early["same_univ"], 0.7);
  EXPECT_GT(early["same_univ"], late["same_univ"]);
  // Univ -> another univ grows and dominates univ -> industry early.
  EXPECT_GT(late["univ_univ"], early["univ_univ"]);
  EXPECT_GE(early["univ_univ"], early["univ_ind"]);
  // Industry -> university rare early, grows late in a career.
  EXPECT_LT(early["ind_univ"], 0.08);
  EXPECT_GT(late["ind_univ"], early["ind_univ"]);
}

}  // namespace
}  // namespace maroon
