#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace maroon {
namespace {

/// The kill-and-recover harness: runs `maroon_cli replay` in a child
/// process with a failpoint armed via MAROON_FAILPOINTS, lets the injected
/// fault crash (or degrade) it, then recovers and resumes, asserting the
/// final store hash is bit-for-bit the hash of an uninterrupted run.
///
/// Tests run with build/tests as working directory (gtest_discover_tests),
/// so the tool lives at ../tools/maroon_cli.
class CrashRecoveryTest : public ::testing::Test {
 protected:
  static constexpr char kCli[] = "../tools/maroon_cli";
  /// Must match failpoint::kKillExitCode (asserted against the child).
  static constexpr int kKillExitCode = 61;

  void SetUp() override {
    if (!std::filesystem::exists(kCli)) {
      GTEST_SKIP() << "maroon_cli binary not found at " << kCli;
    }
    dir_ = ::testing::TempDir() + "/maroon_crash_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Runs the CLI; returns the child's *decoded* exit code so the injected
  /// kill (exit 61) is distinguishable from shell-level failure (-1).
  int Run(const std::string& args, std::string* output = nullptr,
          const std::string& env = "") {
    const std::string out_path = dir_ + "/cmd.out";
    const std::string command = (env.empty() ? "" : env + " ") +
                                std::string(kCli) + " " + args + " > " +
                                out_path + " 2>&1";
    const int raw = std::system(command.c_str());
    if (output != nullptr) {
      std::ifstream in(out_path);
      std::ostringstream ss;
      ss << in.rdbuf();
      *output = ss.str();
    }
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  }

  void GenerateCorpus() {
    std::string out;
    ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                      "/data --entities=20 --names=8 --seed=13",
                  &out),
              0)
        << out;
  }

  std::string ReplayArgs(const std::string& wal_subdir,
                         const std::string& extra = "") {
    // snapshot-every small enough that every snapshot failpoint fires
    // several times per run; sync-every=1 exercises the fsync site per
    // record.
    return "replay --data=" + dir_ + "/data --wal-dir=" + dir_ + "/" +
           wal_subdir + " --snapshot-every=7 --sync-every=1 " + extra;
  }

  static std::string StateLine(const std::string& output,
                               const std::string& key) {
    std::istringstream in(output);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind(key + "=", 0) == 0) return line;
    }
    return "";
  }

  /// The reference hash: one uninterrupted replay into its own WAL dir.
  std::string ReferenceHash() {
    std::string out;
    EXPECT_EQ(Run(ReplayArgs("ref"), &out), 0) << out;
    const std::string hash = StateLine(out, "store_hash");
    EXPECT_FALSE(hash.empty()) << out;
    return hash;
  }

  std::vector<std::string> RegisteredCrashPoints() {
    std::string out;
    EXPECT_EQ(Run("--list-crash-points", &out), 0) << out;
    std::vector<std::string> points;
    std::istringstream in(out);
    std::string line;
    while (std::getline(in, line)) {
      const size_t tab = line.find('\t');
      if (tab != std::string::npos) points.push_back(line.substr(0, tab));
    }
    return points;
  }

  std::string dir_;
};

TEST_F(CrashRecoveryTest, KillAtEveryRegisteredCrashPointThenRecover) {
  GenerateCorpus();
  const std::string want = ReferenceHash();
  const std::vector<std::string> points = RegisteredCrashPoints();
  ASSERT_GE(points.size(), 8u) << "crash-point registry shrank";

  for (size_t i = 0; i < points.size(); ++i) {
    const std::string& point = points[i];
    SCOPED_TRACE(point);
    const std::string wal = "kill_" + std::to_string(i);
    // Let a few hits pass first so the death lands mid-stream, except at
    // sites only reached once per run (WAL creation).
    const std::string skip = point == "wal.open.header" ? "0" : "3";
    std::string out;
    const int code = Run(ReplayArgs(wal), &out,
                         "MAROON_FAILPOINTS=" + point + "=kill@" + skip);
    ASSERT_EQ(code, kKillExitCode)
        << point << " never fired (output: " << out << ")";
    EXPECT_NE(out.find("failpoint kill: " + point), std::string::npos) << out;

    // Recovery alone must succeed and report a consistent store...
    ASSERT_EQ(Run("recover --wal-dir=" + dir_ + "/" + wal, &out), 0)
        << point << ": " << out;
    // ...and resending the whole stream converges on the reference state,
    // with every already-durable record skipped exactly once.
    ASSERT_EQ(Run(ReplayArgs(wal), &out), 0) << point << ": " << out;
    EXPECT_EQ(StateLine(out, "store_hash"), want) << point << ": " << out;
  }
}

TEST_F(CrashRecoveryTest, TornTailIsTruncatedAndNeverMisreplayed) {
  GenerateCorpus();
  const std::string want = ReferenceHash();

  // `torn` cuts the frame mid-write and kills the process — the classic
  // torn tail nobody notices until recovery scans the log.
  std::string out;
  const int code = Run(ReplayArgs("torn"), &out,
                       "MAROON_FAILPOINTS=wal.append.write=torn@11");
  ASSERT_EQ(code, kKillExitCode) << out;

  // Recovery repairs the tail (the torn record was never acknowledged);
  // resuming the stream reapplies it and converges.
  ASSERT_EQ(Run("recover --wal-dir=" + dir_ + "/torn", &out), 0) << out;
  ASSERT_EQ(Run(ReplayArgs("torn"), &out), 0) << out;
  EXPECT_EQ(StateLine(out, "store_hash"), want) << out;
}

TEST_F(CrashRecoveryTest, TransientIoFaultsAreAbsorbedByRetry) {
  GenerateCorpus();
  const std::string want = ReferenceHash();

  // Each spec injects a *recoverable* fault: the stream must complete in
  // one run (exit 0) with the reference hash, absorbing the fault through
  // rollback + retry (writes) or graceful degradation (snapshots).
  const struct {
    const char* spec;
    const char* counter;  // state line expected to be nonzero
  } kFaults[] = {
      {"wal.append.write=short@5:2", "retries"},
      {"wal.append.write=enospc@2:3", "retries"},
      {"wal.append.write=fail@0:1", "retries"},
      {"wal.append.sync=fail@4:2", "retries"},
      {"snapshot.write=fail@0:0", "snapshot_failures"},
      // The bare point is the *action* site of AtomicRename (.before/.after
      // are its pure crash windows).
      {"snapshot.rename=fail@1:0", "snapshot_failures"},
  };
  int i = 0;
  for (const auto& fault : kFaults) {
    SCOPED_TRACE(fault.spec);
    const std::string wal = "fault_" + std::to_string(i++);
    std::string out;
    ASSERT_EQ(Run(ReplayArgs(wal),
                  &out, std::string("MAROON_FAILPOINTS=") + fault.spec),
              0)
        << out;
    EXPECT_EQ(StateLine(out, "store_hash"), want) << out;
    const std::string line = StateLine(out, fault.counter);
    EXPECT_NE(line, std::string(fault.counter) + "=0") << out;
  }
}

TEST_F(CrashRecoveryTest, InjectedCorpusSurvivesCrashAndRecovery) {
  // The full structural fault matrix (all six corruption classes) layered
  // under a process kill: stream the damaged corpus leniently, crash
  // mid-run, recover, resume, and land on the uninterrupted run's hash.
  GenerateCorpus();
  std::string out;
  ASSERT_EQ(Run("inject --data=" + dir_ +
                    "/data --seed=29 --drop-cell=0.1 --invert-interval=0.1 "
                    "--duplicate-id=0.05 --unknown-source=0.05 "
                    "--shuffle-timestamp=0.1 --mangle-separator=0.1",
                &out),
            0)
      << out;

  ASSERT_EQ(Run(ReplayArgs("ref2", "--lenient"), &out), 0) << out;
  const std::string want = StateLine(out, "store_hash");
  ASSERT_FALSE(want.empty()) << out;
  // The structurally damaged rows were quarantined at load — the stream
  // sees a reduced but well-formed record sequence.
  EXPECT_NE(out.find("lenient load: quarantined"), std::string::npos) << out;

  const int code =
      Run(ReplayArgs("crash", "--lenient"), &out,
          "MAROON_FAILPOINTS=stream.apply.before=kill@25");
  ASSERT_EQ(code, kKillExitCode) << out;
  ASSERT_EQ(Run("recover --wal-dir=" + dir_ + "/crash", &out), 0) << out;
  EXPECT_EQ(StateLine(out, "last_seq"), "last_seq=26") << out;
  ASSERT_EQ(Run(ReplayArgs("crash", "--lenient"), &out), 0) << out;
  EXPECT_EQ(StateLine(out, "store_hash"), want) << out;
  EXPECT_EQ(StateLine(out, "resumed_skips"), "resumed_skips=26") << out;
}

}  // namespace
}  // namespace maroon
