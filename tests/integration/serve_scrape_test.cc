// The concurrency suite for the live ops plane: scrapers hammer /metrics
// and /tracez over real sockets while a StreamLinker ingests a
// fault-injected corpus. Run under TSan by the sanitizer CI job; the
// functional assertion is that scrape traffic never perturbs the link
// result (HashProfileStore equality against a scrape-free run).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/profile_wal.h"
#include "core/temporal_record.h"
#include "matching/stream_linker.h"
#include "net/http_client.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/ops_server.h"
#include "obs/trace.h"

namespace maroon {
namespace {

class ServeScrapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::ClearAll();
    obs::MetricsRegistry::SetEnabled(true);
    obs::MetricsRegistry::Global().ResetAll();
    obs::HealthRegistry::Global().Clear();
    dir_ = ::testing::TempDir() + "/maroon_serve_scrape_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    obs::Tracer::SetRingEnabled(false);
    obs::HealthRegistry::Global().Clear();
    failpoint::ClearAll();
    std::filesystem::remove_all(dir_);
  }

  static TemporalRecord MakeRecord(RecordId id) {
    TemporalRecord record(id, "person-" + std::to_string(id % 17),
                          1980 + static_cast<TimePoint>(id % 30), 0);
    record.SetValue("Org", MakeValueSet({"org-" + std::to_string(id % 7)}));
    return record;
  }

  // Streams kRecords through a fresh linker on the calling thread and
  // returns the final store hash. The transient WAL fault (three
  // consecutive injected failures after five clean appends) is absorbed by
  // AppendWithRetry, so the final state is identical with or without it.
  static uint64_t IngestCorpus(const std::string& wal_path) {
    constexpr RecordId kRecords = 200;
    StreamLinkerOptions options;
    options.wal_path = wal_path;
    options.retry_initial_backoff_us = 0;
    auto linker = StreamLinker::Open(options);
    EXPECT_TRUE(linker.ok()) << linker.status();
    if (!linker.ok()) return 0;
    for (RecordId id = 1; id <= kRecords; ++id) {
      Status submitted = linker->Submit(MakeRecord(id));
      if (submitted.code() == StatusCode::kResourceExhausted) {
        EXPECT_TRUE(linker->Drain().ok());
        submitted = linker->Submit(MakeRecord(id));
      }
      EXPECT_TRUE(submitted.ok()) << submitted;
      EXPECT_TRUE(linker->Drain().ok());
    }
    const uint64_t hash = HashProfileStore(linker->store());
    EXPECT_TRUE(linker->Close().ok());
    return hash;
  }

  std::string dir_;
};

TEST_F(ServeScrapeTest, ConcurrentScrapesDoNotPerturbTheLinkResult) {
  // Baseline: the same corpus and the same injected fault, no server.
  ASSERT_TRUE(failpoint::Arm("wal.append.write", "fail@5:3").ok());
  const uint64_t baseline = IngestCorpus(dir_ + "/baseline.wal");
  ASSERT_NE(baseline, 0u);
  failpoint::ClearAll();

  obs::Tracer::SetRingEnabled(true);
  obs::OpsServerOptions ops_options;
  ops_options.http.port = 0;
  ops_options.http.num_workers = 2;
  auto server = obs::OpsServer::Start(std::move(ops_options));
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();

  ASSERT_TRUE(failpoint::Arm("wal.append.write", "fail@5:3").ok());

  // Index 0 ingests (the linker is created, used, and closed on that one
  // strand — StreamLinker is single-owner); the rest scrape concurrently.
  constexpr size_t kScrapers = 3;
  std::atomic<uint64_t> concurrent_hash{0};
  std::atomic<int> scrape_failures{0};
  std::atomic<int> scrapes_done{0};
  const std::string wal_path = dir_ + "/concurrent.wal";
  ThreadPool pool(static_cast<int>(kScrapers) + 1);
  pool.ParallelFor(
      kScrapers + 1, static_cast<int>(kScrapers) + 1,
      [&](int /*strand*/, size_t i) {
        if (i == 0) {
          concurrent_hash.store(IngestCorpus(wal_path),
                                std::memory_order_relaxed);
          return;
        }
        for (int iter = 0; iter < 25; ++iter) {
          const std::string path = iter % 2 == 0 ? "/metrics" : "/tracez";
          auto response = net::HttpGet("127.0.0.1", port, path);
          if (!response.ok() || response->status != 200 ||
              response->body.empty()) {
            scrape_failures.fetch_add(1, std::memory_order_relaxed);
          } else {
            scrapes_done.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });

  EXPECT_EQ(scrape_failures.load(), 0);
  EXPECT_EQ(scrapes_done.load(), static_cast<int>(kScrapers) * 25);
  EXPECT_EQ(concurrent_hash.load(), baseline)
      << "scrape traffic changed the link result";
  // The scrapers really exercised the live surfaces.
  EXPECT_GE((*server)->http_stats().served, static_cast<int>(kScrapers) * 25);
  EXPECT_GT(obs::Tracer::RingSpanCount(), 0u);
  (*server)->Stop();
}

TEST_F(ServeScrapeTest, HealthSurfaceTracksALatchedWalFaultLive) {
  obs::OpsServerOptions ops_options;
  ops_options.http.port = 0;
  auto server = obs::OpsServer::Start(std::move(ops_options));
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();

  StreamLinkerOptions options;
  options.wal_path = dir_ + "/latched.wal";
  options.retry_initial_backoff_us = 0;
  options.max_retries = 1;
  auto linker = StreamLinker::Open(options);
  ASSERT_TRUE(linker.ok()) << linker.status();

  obs::HealthRegistry& health = obs::HealthRegistry::Global();
  linker->ReportHealth(&health);
  health.SetReady(true);
  auto healthy = net::HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(healthy->status, 200);

  // A persistent WAL fault exhausts the retry budget; Drain latches it and
  // ReportHealth flips the live endpoint to 503.
  ASSERT_TRUE(failpoint::Arm("wal.append.write", "fail@0:0").ok());
  ASSERT_TRUE(linker->Submit(MakeRecord(1)).ok());
  EXPECT_FALSE(linker->Drain().ok());
  linker->ReportHealth(&health);
  auto unhealthy = net::HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(unhealthy.ok()) << unhealthy.status();
  EXPECT_EQ(unhealthy->status, 503);
  EXPECT_NE(unhealthy->body.find("UNHEALTHY"), std::string::npos)
      << unhealthy->body;
  auto not_ready = net::HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(not_ready.ok()) << not_ready.status();
  EXPECT_EQ(not_ready->status, 503);

  // The fault clears; the next successful Drain unlatches and recovers.
  failpoint::ClearAll();
  EXPECT_TRUE(linker->Drain().ok());
  linker->ReportHealth(&health);
  auto recovered = net::HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->status, 200);
  EXPECT_TRUE(linker->Close().ok());
  (*server)->Stop();
}

}  // namespace
}  // namespace maroon
