#include <gtest/gtest.h>

#include "datagen/recruitment_generator.h"
#include "eval/experiment.h"

namespace maroon {
namespace {

/// Integration tests under combined publication noise: erroneous values plus
/// typo'd name mentions, exercising the reliability and fuzzy-blocking
/// extensions end to end.
class NoisyPipelineTest : public ::testing::Test {
 protected:
  static Dataset NoisyDataset() {
    RecruitmentOptions options;
    options.seed = 37;
    options.num_entities = 120;
    options.num_names = 40;
    options.social_source_error_rate = 0.2;
    options.social_source_name_typo_rate = 0.25;
    return GenerateRecruitmentDataset(options);
  }

  static ExperimentOptions Base() {
    ExperimentOptions options;
    options.max_eval_entities = 25;
    return options;
  }
};

TEST_F(NoisyPipelineTest, PipelineSurvivesNoise) {
  const Dataset dataset = NoisyDataset();
  Experiment experiment(&dataset, Base());
  experiment.Prepare();
  const ExperimentResult r = experiment.Run(Method::kMaroon);
  EXPECT_EQ(r.entities_evaluated, 25u);
  // Noise hurts, but the pipeline must stay well above chance.
  EXPECT_GT(r.f1, 0.2);
  EXPECT_GT(r.accuracy, 0.3);
}

TEST_F(NoisyPipelineTest, ReliabilityModelSeesTheNoise) {
  const Dataset dataset = NoisyDataset();
  Experiment experiment(&dataset, Base());
  experiment.Prepare();
  const ReliabilityModel& reliability = experiment.reliability_model();
  // CareerHub (0) stays clean; the social sources err.
  EXPECT_LT(reliability.ErrorRate(0, kAttrTitle), 0.02);
  EXPECT_GT(reliability.ErrorRate(1, kAttrTitle), 0.08);
  EXPECT_GT(reliability.ErrorRate(2, kAttrOrganization), 0.08);
}

TEST_F(NoisyPipelineTest, ExtensionsDoNotHurtUnderNoise) {
  const Dataset dataset = NoisyDataset();

  ExperimentOptions plain = Base();
  Experiment base_exp(&dataset, plain);
  base_exp.Prepare();
  const ExperimentResult base = base_exp.Run(Method::kMaroon);

  ExperimentOptions extended = Base();
  extended.use_source_reliability = true;
  extended.use_fuzzy_blocking = true;
  Experiment ext_exp(&dataset, extended);
  ext_exp.Prepare();
  const ExperimentResult ext = ext_exp.Run(Method::kMaroon);

  // Fuzzy blocking recovers typo'd true records; reliability reweights the
  // noisy sources. Together they must not lose to the plain configuration
  // on recall, and overall quality should not collapse.
  EXPECT_GE(ext.recall + 0.02, base.recall)
      << base.ToString() << " vs " << ext.ToString();
  EXPECT_GT(ext.f1, base.f1 - 0.05);
}

TEST_F(NoisyPipelineTest, CleanDataUnaffectedByExtensions) {
  RecruitmentOptions options;
  options.seed = 37;
  options.num_entities = 60;
  options.num_names = 20;
  const Dataset dataset = GenerateRecruitmentDataset(options);

  ExperimentOptions plain = Base();
  plain.max_eval_entities = 15;
  Experiment base_exp(&dataset, plain);
  base_exp.Prepare();
  const ExperimentResult base = base_exp.Run(Method::kMaroon);

  ExperimentOptions extended = plain;
  extended.use_source_reliability = true;
  Experiment ext_exp(&dataset, extended);
  ext_exp.Prepare();
  const ExperimentResult ext = ext_exp.Run(Method::kMaroon);

  // Without injected errors every source is near-fully reliable, so the
  // reliability weighting is close to a no-op.
  EXPECT_NEAR(base.f1, ext.f1, 0.05);
}

}  // namespace
}  // namespace maroon
