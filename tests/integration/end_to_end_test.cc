#include <gtest/gtest.h>

#include "datagen/dblp_generator.h"
#include "datagen/recruitment_generator.h"
#include "eval/experiment.h"

namespace maroon {
namespace {

/// Integration tests asserting the paper's qualitative claims (the "shapes"
/// of Figures 4-6) on small synthetic corpora. These are the end-to-end
/// checks that the full pipeline — generators, model training, Phase I/II,
/// baselines, metrics — composes correctly.
class EndToEndShapeTest : public ::testing::Test {
 protected:
  static Dataset RecruitmentDataset() {
    RecruitmentOptions options;
    options.seed = 7;
    options.num_entities = 120;
    options.num_names = 40;
    return GenerateRecruitmentDataset(options);
  }

  static ExperimentOptions Options() {
    ExperimentOptions options;
    options.max_eval_entities = 30;
    return options;
  }
};

TEST_F(EndToEndShapeTest, TransitionModelBeatsMutaUnderAfds) {
  // Figure 4's shape: MAROON_TR (transition model) outperforms MUTA on F1.
  const Dataset dataset = RecruitmentDataset();
  Experiment experiment(&dataset, Options());
  experiment.Prepare();
  const ExperimentResult tr = experiment.Run(Method::kAfdsTransition);
  const ExperimentResult muta = experiment.Run(Method::kAfdsMuta);
  EXPECT_GT(tr.f1, muta.f1 - 0.02)
      << "transition model should not lose to MUTA: " << tr.ToString()
      << " vs " << muta.ToString();
}

TEST_F(EndToEndShapeTest, MaroonBeatsMutaAfdsOnProfileQuality) {
  // Figure 6's shape: full MAROON builds more accurate, more complete
  // profiles than MUTA+AFDS.
  const Dataset dataset = RecruitmentDataset();
  Experiment experiment(&dataset, Options());
  experiment.Prepare();
  const ExperimentResult maroon = experiment.Run(Method::kMaroon);
  const ExperimentResult muta = experiment.Run(Method::kAfdsMuta);
  EXPECT_GT(maroon.completeness, muta.completeness)
      << maroon.ToString() << " vs " << muta.ToString();
  EXPECT_GT(maroon.accuracy + maroon.completeness,
            muta.accuracy + muta.completeness);
}

TEST_F(EndToEndShapeTest, MaroonBeatsStaticLinkageOnRecall) {
  // Static linkage misses future states by construction.
  const Dataset dataset = RecruitmentDataset();
  Experiment experiment(&dataset, Options());
  experiment.Prepare();
  const ExperimentResult maroon = experiment.Run(Method::kMaroon);
  const ExperimentResult st = experiment.Run(Method::kStatic);
  EXPECT_GT(maroon.recall, st.recall)
      << maroon.ToString() << " vs " << st.ToString();
}

TEST_F(EndToEndShapeTest, DblpPipelineRunsEndToEnd) {
  DblpOptions options;
  options.seed = 11;
  options.num_entities = 60;
  options.num_names = 10;
  const DblpCorpus corpus = GenerateDblpCorpus(options);
  ExperimentOptions exp_options;
  exp_options.max_eval_entities = 15;
  Experiment experiment(&corpus.dataset, exp_options);
  experiment.Prepare();
  const ExperimentResult maroon = experiment.Run(Method::kMaroon);
  EXPECT_EQ(maroon.entities_evaluated, 15u);
  EXPECT_GT(maroon.recall, 0.2);
  const ExperimentResult muta = experiment.Run(Method::kAfdsMuta);
  EXPECT_GE(maroon.f1, muta.f1 - 0.1)
      << maroon.ToString() << " vs " << muta.ToString();
}

}  // namespace
}  // namespace maroon
