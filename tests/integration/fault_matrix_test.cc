#include <gtest/gtest.h>

#include <filesystem>

#include "core/dataset_io.h"
#include "core/validation.h"
#include "datagen/dblp_generator.h"
#include "datagen/fault_injector.h"
#include "datagen/recruitment_generator.h"
#include "eval/experiment.h"

namespace maroon {
namespace {

/// Exhaustive fault matrix: every injector fault class, one at a time, at a
/// 20% rate over a clean corpus. For each class the pipeline must
///   (a) refuse the corrupted serialization under the strict policy,
///   (b) quarantine *exactly* the injected rows/records under kQuarantine
///       (1:1 attribution — at most one fault per row by construction),
///   (c) link the surviving records crash-free with F1 close to the clean
///       baseline, and
///   (d) for the repairable classes, restore the clean baseline exactly
///       under kRepair.
class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/maroon_matrix_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Dataset CleanRecruitment() {
    RecruitmentOptions options;
    options.seed = 37;
    options.num_entities = 60;
    options.num_names = 20;
    return GenerateRecruitmentDataset(options);
  }

  static Dataset CleanDblp() {
    DblpOptions options;
    options.num_entities = 40;
    options.num_names = 10;
    return GenerateDblpCorpus(options).dataset;
  }

  static ExperimentOptions EvalOptions() {
    ExperimentOptions options;
    options.max_eval_entities = 15;
    return options;
  }

  static double F1Of(const Dataset& dataset) {
    Experiment experiment(&dataset, EvalOptions());
    experiment.Prepare();
    return experiment.Run(Method::kMaroon).f1;
  }

  /// Writes `clean`, injects exactly one fault class, and checks the strict /
  /// quarantine contracts. Returns the lenient-loaded (quarantined) dataset.
  Dataset InjectAndCheck(const Dataset& clean,
                         const FaultInjectorOptions& fault_options,
                         size_t* injected) {
    EXPECT_TRUE(WriteDatasetCsv(clean, dir_).ok());
    FaultInjector injector(fault_options);
    auto fault_report = injector.CorruptDirectory(dir_);
    EXPECT_TRUE(fault_report.ok()) << fault_report.status();
    *injected = fault_report->total();
    EXPECT_GT(*injected, 0u) << "fault class never fired at 20%";

    // (a) Strict: the corrupted serialization must not load silently.
    CsvLoadOptions strict;
    strict.validation.policy = RepairPolicy::kStrict;
    strict.infer_plausible_window = true;
    ValidationReport strict_report;
    auto strict_load = ReadDatasetCsv(dir_, strict, &strict_report);
    EXPECT_FALSE(strict_load.ok())
        << "strict load accepted a corrupted dataset";

    // (b) Quarantine: exact 1:1 attribution of drops to injections.
    CsvLoadOptions lenient;
    lenient.validation.policy = RepairPolicy::kQuarantine;
    lenient.infer_plausible_window = true;
    ValidationReport report;
    auto loaded = ReadDatasetCsv(dir_, lenient, &report);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(report.TotalQuarantined(), *injected)
        << report.ToString();
    return std::move(loaded).value();
  }

  std::string dir_;
};

TEST_F(FaultMatrixTest, DropCell) {
  const Dataset clean = CleanRecruitment();
  const double baseline = F1Of(clean);
  FaultInjectorOptions options;
  options.drop_cell_rate = 0.2;
  size_t injected = 0;
  const Dataset survived = InjectAndCheck(clean, options, &injected);
  EXPECT_EQ(survived.NumRecords(), clean.NumRecords() - injected);
  const double f1 = F1Of(survived);
  EXPECT_GE(f1, baseline - 0.2) << "baseline " << baseline;
}

TEST_F(FaultMatrixTest, DuplicateRecordId) {
  const Dataset clean = CleanRecruitment();
  const double baseline = F1Of(clean);
  FaultInjectorOptions options;
  options.duplicate_record_rate = 0.2;
  size_t injected = 0;
  const Dataset survived = InjectAndCheck(clean, options, &injected);
  // The duplicates themselves are dropped; every original row survives.
  EXPECT_EQ(survived.NumRecords(), clean.NumRecords());
  const double f1 = F1Of(survived);
  EXPECT_NEAR(f1, baseline, 1e-12);
}

TEST_F(FaultMatrixTest, UnknownSource) {
  const Dataset clean = CleanRecruitment();
  const double baseline = F1Of(clean);
  FaultInjectorOptions options;
  options.unknown_source_rate = 0.2;
  size_t injected = 0;
  const Dataset survived = InjectAndCheck(clean, options, &injected);
  EXPECT_EQ(survived.NumRecords(), clean.NumRecords() - injected);
  const double f1 = F1Of(survived);
  EXPECT_GE(f1, baseline - 0.2) << "baseline " << baseline;
}

TEST_F(FaultMatrixTest, ShuffleTimestamp) {
  const Dataset clean = CleanRecruitment();
  const double baseline = F1Of(clean);
  FaultInjectorOptions options;
  options.shuffle_timestamp_rate = 0.2;
  size_t injected = 0;
  const Dataset survived = InjectAndCheck(clean, options, &injected);
  // Shuffled stamps pass the structural row checks but land far outside the
  // inferred plausibility window, so post-validation quarantines them.
  EXPECT_EQ(survived.NumRecords(), clean.NumRecords() - injected);
  const double f1 = F1Of(survived);
  EXPECT_GE(f1, baseline - 0.2) << "baseline " << baseline;
}

TEST_F(FaultMatrixTest, InvertInterval) {
  const Dataset clean = CleanRecruitment();
  const double baseline = F1Of(clean);
  FaultInjectorOptions options;
  options.invert_interval_rate = 0.2;
  size_t injected = 0;
  const Dataset survived = InjectAndCheck(clean, options, &injected);
  // Inverted intervals live in profiles.csv; no record is lost, but clean
  // profiles thin out, so allow a wider (still bounded) F1 drop.
  EXPECT_EQ(survived.NumRecords(), clean.NumRecords());
  const double f1 = F1Of(survived);
  EXPECT_GE(f1, baseline - 0.3) << "baseline " << baseline;

  // (d) kRepair swaps the bounds back: the dataset is exactly the clean one.
  CsvLoadOptions repair;
  repair.validation.policy = RepairPolicy::kRepair;
  repair.infer_plausible_window = true;
  ValidationReport report;
  auto repaired = ReadDatasetCsv(dir_, repair, &report);
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(report.TotalQuarantined(), 0u) << report.ToString();
  EXPECT_GE(report.repairs_applied, injected);
  EXPECT_NEAR(F1Of(*repaired), baseline, 1e-12);
}

TEST_F(FaultMatrixTest, MangleSeparator) {
  // Recruitment values are single-valued; DBLP coauthor lists give the
  // separator mangler something to chew on.
  const Dataset clean = CleanDblp();
  const double baseline = F1Of(clean);
  FaultInjectorOptions options;
  options.mangle_separator_rate = 0.2;
  size_t injected = 0;
  const Dataset survived = InjectAndCheck(clean, options, &injected);
  EXPECT_EQ(survived.NumRecords(), clean.NumRecords() - injected);
  const double f1 = F1Of(survived);
  EXPECT_GE(f1, baseline - 0.2) << "baseline " << baseline;

  // (d) kRepair re-splits the pipe-joined values: exactly the clean corpus.
  CsvLoadOptions repair;
  repair.validation.policy = RepairPolicy::kRepair;
  repair.infer_plausible_window = true;
  ValidationReport report;
  auto repaired = ReadDatasetCsv(dir_, repair, &report);
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(report.TotalQuarantined(), 0u) << report.ToString();
  EXPECT_EQ(report.repairs_applied, injected);
  EXPECT_NEAR(F1Of(*repaired), baseline, 1e-12);
}

TEST_F(FaultMatrixTest, AllClassesAtOnceStayAttributable) {
  const Dataset clean = CleanDblp();
  FaultInjectorOptions options;
  options.drop_cell_rate = 0.05;
  options.invert_interval_rate = 0.05;
  options.duplicate_record_rate = 0.05;
  options.unknown_source_rate = 0.05;
  options.shuffle_timestamp_rate = 0.05;
  options.mangle_separator_rate = 0.05;
  size_t injected = 0;
  const Dataset survived = InjectAndCheck(clean, options, &injected);
  // Crash-free end-to-end linkage over the quarantined remainder.
  Experiment experiment(&survived, EvalOptions());
  experiment.Prepare();
  const ExperimentResult result = experiment.Run(Method::kMaroon);
  EXPECT_GT(result.entities_evaluated, 0u);
}

}  // namespace
}  // namespace maroon
