#include "net/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "common/thread_pool.h"
#include "net/http_client.h"

namespace maroon {
namespace net {
namespace {

HttpHandler EchoHandler() {
  return [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.method + " " + request.path + " q=" +
                    request.query + "\n";
    return response;
  };
}

TEST(HttpServerTest, ServesASimpleGet) {
  HttpServerOptions options;  // port 0: ephemeral
  auto server = HttpServer::Start(options, EchoHandler());
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_GT((*server)->port(), 0);

  auto response = HttpGet("127.0.0.1", (*server)->port(), "/hello?x=1");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "GET /hello q=x=1\n");
  EXPECT_EQ(response->content_type, "text/plain; charset=utf-8");

  (*server)->Stop();
  const HttpServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.served, 1);
}

TEST(HttpServerTest, HandlerStatusAndContentTypePassThrough) {
  HttpServerOptions options;
  auto server = HttpServer::Start(options, [](const HttpRequest&) {
    HttpResponse response;
    response.status = 418;
    response.content_type = "application/json; charset=utf-8";
    response.body = "{}";
    return response;
  });
  ASSERT_TRUE(server.ok()) << server.status();
  auto response = HttpGet("127.0.0.1", (*server)->port(), "/");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 418);
  EXPECT_EQ(response->content_type, "application/json; charset=utf-8");
  EXPECT_EQ(response->body, "{}");
}

TEST(HttpServerTest, StopIsIdempotentAndDestructorIsSafe) {
  HttpServerOptions options;
  auto server = HttpServer::Start(options, EchoHandler());
  ASSERT_TRUE(server.ok()) << server.status();
  (*server)->Stop();
  (*server)->Stop();  // second call is a no-op
  server->reset();    // destructor after explicit Stop
}

TEST(HttpServerTest, RejectsNonGetMethodsWith405) {
  HttpServerOptions options;
  auto server = HttpServer::Start(options, EchoHandler());
  ASSERT_TRUE(server.ok()) << server.status();
  // The test client only speaks GET, so assert through the serializer and
  // the stats counter via a raw handler probe instead: issue a GET to keep
  // the connection machinery covered, then check SerializeResponse shapes.
  auto ok = HttpGet("127.0.0.1", (*server)->port(), "/x");
  ASSERT_TRUE(ok.ok()) << ok.status();
  HttpResponse response;
  response.status = 405;
  response.body = "method not allowed\n";
  const std::string wire =
      HttpServer::SerializeResponse(response, /*include_body=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos)
      << wire;
  EXPECT_NE(wire.find("Connection: close"), std::string::npos) << wire;
  EXPECT_NE(wire.find("Content-Length: 19"), std::string::npos) << wire;
}

TEST(HttpServerTest, SerializeOmitsBodyForHead) {
  HttpResponse response;
  response.body = "payload";
  const std::string head =
      HttpServer::SerializeResponse(response, /*include_body=*/false);
  EXPECT_EQ(head.find("payload"), std::string::npos) << head;
  // Content-Length still reflects the body a GET would have returned.
  EXPECT_NE(head.find("Content-Length: 7"), std::string::npos) << head;
}

TEST(HttpServerTest, StartFailsWithoutAHandler) {
  HttpServerOptions options;
  auto server = HttpServer::Start(options, nullptr);
  EXPECT_FALSE(server.ok());
}

TEST(HttpServerTest, StartFailsOnABadBindAddress) {
  HttpServerOptions options;
  options.bind_address = "not-an-address";
  auto server = HttpServer::Start(options, EchoHandler());
  EXPECT_FALSE(server.ok());
}

TEST(HttpServerTest, StartFailsOnAnOccupiedPort) {
  HttpServerOptions options;
  auto first = HttpServer::Start(options, EchoHandler());
  ASSERT_TRUE(first.ok()) << first.status();
  options.port = (*first)->port();
  auto second = HttpServer::Start(options, EchoHandler());
  EXPECT_FALSE(second.ok());
}

TEST(HttpServerTest, ServesManySequentialRequests) {
  HttpServerOptions options;
  auto server = HttpServer::Start(options, EchoHandler());
  ASSERT_TRUE(server.ok()) << server.status();
  for (int i = 0; i < 20; ++i) {
    auto response = HttpGet("127.0.0.1", (*server)->port(),
                            "/seq/" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->status, 200);
  }
  (*server)->Stop();
  EXPECT_EQ((*server)->stats().served, 20);
}

TEST(HttpServerTest, ServesConcurrentClients) {
  HttpServerOptions options;
  options.num_workers = 2;
  std::atomic<int> handled{0};
  auto server =
      HttpServer::Start(options, [&handled](const HttpRequest& request) {
        handled.fetch_add(1, std::memory_order_relaxed);
        HttpResponse response;
        response.body = request.path;
        return response;
      });
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> failures{0};
  ThreadPool pool(kClients);
  pool.ParallelFor(
      kClients * kRequestsPerClient, kClients,
      [port, &failures](int /*strand*/, size_t i) {
        auto response =
            HttpGet("127.0.0.1", port, "/c/" + std::to_string(i));
        if (!response.ok() || response->status != 200 ||
            response->body != "/c/" + std::to_string(i)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handled.load(), kClients * kRequestsPerClient);
  (*server)->Stop();
  EXPECT_EQ((*server)->stats().served, kClients * kRequestsPerClient);
}

TEST(HttpServerTest, ClientRejectsUnreachablePort) {
  // Find a port with nothing behind it by binding and immediately stopping.
  HttpServerOptions options;
  auto server = HttpServer::Start(options, EchoHandler());
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();
  (*server)->Stop();
  server->reset();
  auto response = HttpGet("127.0.0.1", port, "/", /*timeout_ms=*/500);
  EXPECT_FALSE(response.ok());
}

}  // namespace
}  // namespace net
}  // namespace maroon
