#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "lint/concurrency.h"
#include "lint/rules.h"
#include "lint/symbols.h"

namespace maroon {
namespace lint {
namespace {

constexpr char kRoot[] = MAROON_SOURCE_DIR;

FileSymbols Build(const std::string& rel_path, const std::string& content) {
  return BuildFileSymbols(MakeSourceFile(rel_path, content));
}

/// Runs the concurrency checker (R011-R014 plus this file's own lock-order
/// cycles) on in-memory content.
std::vector<Finding> Check(const std::string& rel_path,
                           const std::string& content) {
  const SourceFile file = MakeSourceFile(rel_path, content);
  const FileSymbols symbols = BuildFileSymbols(file);
  std::map<std::string, ClassModel> classes;
  MergeClassModels(symbols.classes, &classes);
  ConcurrencyContext context;
  context.classes = &classes;
  std::vector<Finding> findings;
  LockOrderGraph graph;
  CheckConcurrency(file, symbols, context, &findings, &graph);
  for (const Finding& f : graph.CheckCycles()) findings.push_back(f);
  return findings;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MAROON_CHECK(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SymbolsTest, RecordsGuardedFieldsMutexMembersAndMethods) {
  const FileSymbols symbols = Build("src/core/scratch.h",
                                    R"(#ifndef X
#define X
namespace maroon {
class Widget {
 public:
  void Poke() MAROON_REQUIRES(mu_);
  void Wake() MAROON_EXCLUDES(mu_);
 private:
  Mutex mu_;
  int jobs_ MAROON_GUARDED_BY(mu_) = 0;
  char* buf_ MAROON_PT_GUARDED_BY(mu_) = nullptr;
};
}  // namespace maroon
#endif
)");
  ASSERT_EQ(symbols.classes.count("Widget"), 1u);
  const ClassModel& widget = symbols.classes.at("Widget");
  EXPECT_TRUE(widget.HasConcurrencyModel());
  EXPECT_EQ(widget.mutex_members.count("mu_"), 1u);
  ASSERT_EQ(widget.guarded_fields.count("jobs_"), 1u);
  EXPECT_EQ(widget.guarded_fields.at("jobs_").guard, "mu_");
  EXPECT_FALSE(widget.guarded_fields.at("jobs_").pointer_guard);
  ASSERT_EQ(widget.guarded_fields.count("buf_"), 1u);
  EXPECT_TRUE(widget.guarded_fields.at("buf_").pointer_guard);
  ASSERT_EQ(widget.methods.count("Poke"), 1u);
  EXPECT_EQ(widget.methods.at("Poke").requires_held,
            (std::vector<std::string>{"mu_"}));
  ASSERT_EQ(widget.methods.count("Wake"), 1u);
  EXPECT_EQ(widget.methods.at("Wake").excludes,
            (std::vector<std::string>{"mu_"}));
}

TEST(SymbolsTest, RecordsOutOfLineDefinitionsAndCtors) {
  const FileSymbols symbols = Build("src/core/scratch.cc",
                                    R"(namespace maroon {
class Widget {
 public:
  Widget();
  ~Widget();
  void Poke();
};
Widget::Widget() : x_(1) { x_ = 2; }
Widget::~Widget() { x_ = 0; }
void Widget::Poke() { x_ = 3; }
int Free() { return 1; }
}  // namespace maroon
)");
  ASSERT_EQ(symbols.functions.size(), 4u);
  EXPECT_EQ(symbols.functions[0].class_name, "Widget");
  EXPECT_TRUE(symbols.functions[0].is_ctor);
  EXPECT_TRUE(symbols.functions[1].is_dtor);
  EXPECT_EQ(symbols.functions[2].name, "Poke");
  EXPECT_EQ(symbols.functions[2].class_name, "Widget");
  EXPECT_EQ(symbols.functions[3].name, "Free");
  EXPECT_TRUE(symbols.functions[3].class_name.empty());
}

TEST(SymbolsTest, NestedNamespacesAndStructsScopeNames) {
  const FileSymbols symbols = Build("src/core/scratch.cc",
                                    R"(namespace maroon {
namespace detail {
struct Inner {
  Mutex mu;
  int n MAROON_GUARDED_BY(mu) = 0;
};
}  // namespace detail
}  // namespace maroon
)");
  ASSERT_EQ(symbols.classes.count("Inner"), 1u);
  EXPECT_EQ(symbols.classes.at("Inner").guarded_fields.count("n"), 1u);
}

TEST(SymbolsTest, MergeUnionsClassFactsAcrossFiles) {
  const FileSymbols header = Build("src/core/scratch.h",
                                   R"(#ifndef X
#define X
class Widget {
  void Poke() MAROON_REQUIRES(mu_);
  Mutex mu_;
};
#endif
)");
  const FileSymbols impl = Build("src/core/scratch.cc",
                                 R"(class Widget {
  int extra_ MAROON_GUARDED_BY(mu_) = 0;
};
)");
  std::map<std::string, ClassModel> merged;
  MergeClassModels(header.classes, &merged);
  MergeClassModels(impl.classes, &merged);
  const ClassModel& widget = merged.at("Widget");
  EXPECT_EQ(widget.methods.count("Poke"), 1u);
  EXPECT_EQ(widget.guarded_fields.count("extra_"), 1u);
  EXPECT_EQ(widget.mutex_members.count("mu_"), 1u);
}

TEST(LockModelTest, NestedLambdaInheritsHeldLocks) {
  // The walker treats a lambda body as a nested scope of the enclosing
  // function, so a lock held outside remains held inside — no false R011.
  const std::vector<Finding> findings = Check("src/core/scratch.cc",
                                              R"(namespace maroon {
class Runner {
 public:
  void Run() {
    MutexLock lock(&mu_);
    auto task = [this] {
      ++jobs_;
      auto inner = [this] { ++jobs_; };
      inner();
    };
    task();
  }
 private:
  Mutex mu_;
  int jobs_ MAROON_GUARDED_BY(mu_) = 0;
};
}  // namespace maroon
)");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(LockModelTest, EarlyReturnWhileHoldingScopedLockIsClean) {
  const std::vector<Finding> findings = Check("src/core/scratch.cc",
                                              R"(namespace maroon {
class Runner {
 public:
  void Run() {
    MutexLock lock(&mu_);
    if (jobs_ > 0) return;
    ++jobs_;
  }
 private:
  Mutex mu_;
  int jobs_ MAROON_GUARDED_BY(mu_) = 0;
};
}  // namespace maroon
)");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(LockModelTest, ScopedLockCoversBothMutexes) {
  const std::vector<Finding> findings = Check("src/core/scratch.cc",
                                              R"(namespace maroon {
class Runner {
 public:
  void Run() {
    std::scoped_lock lock(a_, b_);
    ++x_;
    ++y_;
  }
 private:
  Mutex a_;
  Mutex b_;
  int x_ MAROON_GUARDED_BY(a_) = 0;
  int y_ MAROON_GUARDED_BY(b_) = 0;
};
}  // namespace maroon
)");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(LockModelTest, ManualLockUnlockTracksHeldState) {
  const std::vector<Finding> findings = Check("src/core/scratch.cc",
                                              R"(namespace maroon {
class Runner {
 public:
  void Run() {
    MutexLock lock(&mu_);
    ++jobs_;
    lock.unlock();
    ++jobs_;
    lock.lock();
    ++jobs_;
  }
 private:
  Mutex mu_;
  int jobs_ MAROON_GUARDED_BY(mu_) = 0;
};
}  // namespace maroon
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R011");
  EXPECT_EQ(findings[0].line, 8);
}

TEST(LockModelTest, BlockScopeReleasesItsLock) {
  const std::vector<Finding> findings = Check("src/core/scratch.cc",
                                              R"(namespace maroon {
class Runner {
 public:
  void Run() {
    {
      MutexLock lock(&mu_);
      ++jobs_;
    }
    ++jobs_;
  }
 private:
  Mutex mu_;
  int jobs_ MAROON_GUARDED_BY(mu_) = 0;
};
}  // namespace maroon
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R011");
  EXPECT_EQ(findings[0].line, 9);
}

TEST(LockModelTest, HeaderAnnotationAppliesToOutOfLineBody) {
  // The MAROON_REQUIRES lives only on the in-class declaration; the
  // out-of-line definition inherits it through the merged class registry.
  const std::vector<Finding> findings = Check("src/core/scratch.cc",
                                              R"(namespace maroon {
class Runner {
 public:
  void Poke() MAROON_REQUIRES(mu_);
 private:
  Mutex mu_;
  int jobs_ MAROON_GUARDED_BY(mu_) = 0;
};
void Runner::Poke() { ++jobs_; }
}  // namespace maroon
)");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(LockModelTest, CtorAndDtorAreExemptFromGuards) {
  const std::vector<Finding> findings = Check("src/core/scratch.cc",
                                              R"(namespace maroon {
class Runner {
 public:
  Runner() { jobs_ = 1; }
  ~Runner() { jobs_ = 0; }
 private:
  Mutex mu_;
  int jobs_ MAROON_GUARDED_BY(mu_) = 0;
};
}  // namespace maroon
)");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(LockModelTest, NoAnalysisSkipsTheFunction) {
  const std::vector<Finding> findings = Check("src/core/scratch.cc",
                                              R"(namespace maroon {
class Runner {
 public:
  void Racy() MAROON_NO_THREAD_SAFETY_ANALYSIS { ++jobs_; }
 private:
  Mutex mu_;
  int jobs_ MAROON_GUARDED_BY(mu_) = 0;
};
}  // namespace maroon
)");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(SymbolsIntegrationTest, ParsesRealThreadPoolHeader) {
  const std::string path =
      std::string(kRoot) + "/src/common/thread_pool.h";
  const FileSymbols symbols = Build("src/common/thread_pool.h",
                                    ReadFile(path));
  ASSERT_EQ(symbols.classes.count("ThreadPool"), 1u);
  const ClassModel& pool = symbols.classes.at("ThreadPool");
  EXPECT_EQ(pool.mutex_members.count("mu_"), 1u);
  EXPECT_EQ(pool.mutex_members.count("run_mu_"), 1u);
  ASSERT_EQ(pool.guarded_fields.count("shutdown_"), 1u);
  EXPECT_EQ(pool.guarded_fields.at("shutdown_").guard, "mu_");
  ASSERT_EQ(pool.guarded_fields.count("batch_"), 1u);
  EXPECT_EQ(pool.guarded_fields.at("batch_").guard, "mu_");
  ASSERT_EQ(symbols.classes.count("Batch"), 1u);
  EXPECT_EQ(symbols.classes.at("Batch").guarded_fields.count(
                "active_helpers"),
            1u);
}

}  // namespace
}  // namespace lint
}  // namespace maroon
