// Lint fixture (never compiled): R007 — direct system_clock::now() outside
// src/obs/ and src/common/. Scanned by lint_test; line numbers below are
// asserted there.
#include <chrono>

namespace maroon {

long WallClockRead() {
  auto t = std::chrono::system_clock::now();  // R007 expected on this line (9)
  return t.time_since_epoch().count();
}

double SteadyDurationIsClean() {
  const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

long SuppressedIsSilent() {
  // maroon-lint: allow(R007)
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}

void MentionWithoutCallIsClean() {
  using clock = std::chrono::system_clock;
  clock::time_point unused;
  (void)unused;
}

}  // namespace maroon
