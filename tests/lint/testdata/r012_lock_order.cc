// Lint fixture (never compiled): R012 — lock-order cycles in the global
// acquisition graph. Scanned by lint_test; line numbers are asserted there.
#include <mutex>

#include "common/mutex.h"

namespace maroon {

class Orderer {
 public:
  void AthenB() {
    MutexLock a(&a_);
    MutexLock b(&b_);  // R012 expected here (13): a_ -> b_ half of the cycle
  }

  void BthenA() {
    MutexLock b(&b_);
    MutexLock a(&a_);  // R012 expected here (18): b_ -> a_ half of the cycle
  }

  void ScopedBothIsClean() {
    std::scoped_lock both(c_, d_);  // no inter-argument edges
  }

  void DthenCIsClean() {
    MutexLock d(&d_);
    MutexLock c(&c_);  // no reverse order anywhere: no cycle
  }

  void EthenF() {
    MutexLock e(&e_);
    MutexLock f(&f_);
  }

  void FthenESuppressed() {
    MutexLock f(&f_);
    // maroon-lint: allow(R012)
    MutexLock e(&e_);  // suppressed edge: excluded from cycle detection
  }

 private:
  Mutex a_;
  Mutex b_;
  Mutex c_;
  Mutex d_;
  Mutex e_;
  Mutex f_;
};

}  // namespace maroon
