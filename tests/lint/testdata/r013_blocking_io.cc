// Lint fixture (never compiled): R013 — blocking I/O inside a critical
// section. Scanned by lint_test; line numbers are asserted there.
#include <cstdio>
#include <fstream>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace maroon {

class Sink {
 public:
  void BadFreeFlush() {
    MutexLock lock(&mu_);
    (void)std::fflush(file_);  // R013 expected on this line (15)
  }

  void BadMemberFlush() {
    MutexLock lock(&mu_);
    out_.flush();  // R013 expected on this line (20)
  }

  void GoodFlushOutsideLock() {
    {
      MutexLock lock(&mu_);
      dirty_ = false;
    }
    (void)std::fflush(file_);  // lock released: clean
  }

  void SuppressedFlush() {
    MutexLock lock(&mu_);
    (void)std::fflush(file_);  // maroon-lint: allow(R013)
  }

 private:
  Mutex mu_;
  bool dirty_ MAROON_GUARDED_BY(mu_) = false;
  FILE* file_ = nullptr;
  std::ofstream out_;
};

}  // namespace maroon
