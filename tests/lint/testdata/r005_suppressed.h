// Lint fixture (never compiled): R005 suppressed-negative case — same
// violations as r005_bad_guard.h, silenced per site.
// maroon-lint: allow(R005)
#ifndef TESTS_LINT_ALSO_WRONG_H
#define TESTS_LINT_ALSO_WRONG_H

using namespace std;  // maroon-lint: allow(R005)

#endif  // TESTS_LINT_ALSO_WRONG_H
