// Lint fixture (never compiled): R010 — discarded fwrite/fflush/rename
// return values. Scanned by lint_test; line numbers below are asserted
// there. Lives under testdata, which the rule deliberately does not exempt.
#include <cstdio>

namespace maroon {

void DiscardedCallsFire(FILE* f, const char* data) {
  fwrite(data, 1, 8, f);  // R010 expected on this line (9)
  fflush(f);              // R010 expected on this line (10)
  rename("a", "b");       // R010 expected on this line (11)
  std::rename("a", "b");  // R010 expected on this line (12)
}

void CheckedCallsAreClean(FILE* f, const char* data) {
  if (fwrite(data, 1, 8, f) != 8) return;
  const size_t n = fwrite(data, 1, 8, f);
  if (n != 8) return;
  if (fflush(f) != 0) return;
  while (std::rename("a", "b") != 0) {
  }
}

void ExplicitDiscardIsClean(FILE* f) {
  // Best-effort flush on a diagnostics path; failure changes nothing.
  (void)fflush(f);
}

void SuppressedIsSilent(FILE* f) {
  // maroon-lint: allow(R010)
  fflush(f);
}

void MemberAndForeignNamesAreClean() {
  struct Log {
    void fflush() {}
    void rename(const char*, const char*) {}
  } log;
  log.fflush();
  log.rename("a", "b");
}

}  // namespace maroon
