// Lint fixture (never compiled): R005 — header hygiene.
// Scanned by lint_test; line numbers below are asserted there.
#ifndef TESTS_LINT_WRONG_GUARD_H  // R005 expected on this line (3)
#define TESTS_LINT_WRONG_GUARD_H

using namespace std;  // R005 expected on this line (6)

#endif  // TESTS_LINT_WRONG_GUARD_H
