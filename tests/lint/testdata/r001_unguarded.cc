// Lint fixture (never compiled): R001 — Result access without an ok() guard.
// Scanned by lint_test; line numbers below are asserted there.
#include "common/result.h"

namespace maroon {

Result<int> MakeValue();

int PositiveValueCall() {
  Result<int> r = MakeValue();
  return r.value();  // R001 expected on this line (11)
}

int PositiveDereference() {
  Result<int> r = MakeValue();
  return *r;  // R001 expected on this line (16)
}

int GuardedIsClean() {
  Result<int> r = MakeValue();
  if (!r.ok()) return -1;
  return r.value();
}

int CheckGuardIsClean() {
  Result<int> r = MakeValue();
  MAROON_CHECK(r.ok());
  return *r;
}

int SuppressedIsSilent() {
  Result<int> r = MakeValue();
  // maroon-lint: allow(R001)
  return r.value();
}

}  // namespace maroon
