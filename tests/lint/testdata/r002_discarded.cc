// Lint fixture (never compiled): R002 — discarded Status/Result returns.
// Scanned by lint_test; line numbers below are asserted there.
#include "common/result.h"
#include "common/status.h"

namespace maroon {

Status SaveThing();
Result<int> LoadThing();

class Sink {
 public:
  Status Append(int v);
  void Clear();
};

void PositiveDiscards(Sink& sink) {
  SaveThing();      // R002 expected on this line (18)
  LoadThing();      // R002 expected on this line (19)
  sink.Append(3);   // R002 expected on this line (20)
}

Status HandledIsClean(Sink& sink) {
  MAROON_RETURN_IF_ERROR(SaveThing());
  Status s = sink.Append(4);
  sink.Clear();  // void return: clean
  if (SaveThing().ok()) sink.Clear();
  return s;
}

void SuppressedIsSilent() {
  SaveThing();  // maroon-lint: allow(R002)
}

}  // namespace maroon
