// Lint fixture (never compiled): R014 — memory_order_relaxed outside the
// allowlisted counter files. Scanned by lint_test; lines are asserted there.
#include <atomic>

namespace maroon {

inline std::atomic<int> g_hits{0};

inline void BadRelaxed() {
  g_hits.fetch_add(1, std::memory_order_relaxed);  // R014 expected here (10)
}

inline void SuppressedRelaxed() {
  g_hits.fetch_add(1, std::memory_order_relaxed);  // maroon-lint: allow(R014)
}

inline void GoodAcquireRelease() {
  g_hits.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace maroon
