// Lint fixture (never compiled): R011 — guarded-field access without the
// guarding mutex held. Scanned by lint_test; line numbers are asserted there.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace maroon {

class GuardedCounter {
 public:
  void BadIncrement() {
    ++count_;  // R011 expected on this line (11)
  }

  void BadCall() {
    RequiresIncrement();  // R011 expected on this line (15)
  }

  void GoodIncrement() {
    MutexLock lock(&mu_);
    ++count_;
  }

  void RequiresIncrement() MAROON_REQUIRES(mu_) { ++count_; }

  void GoodCall() {
    MutexLock lock(&mu_);
    RequiresIncrement();
  }

  void SuppressedIncrement() {
    ++count_;  // maroon-lint: allow(R011)
  }

 private:
  Mutex mu_;
  int count_ MAROON_GUARDED_BY(mu_) = 0;
};

}  // namespace maroon
