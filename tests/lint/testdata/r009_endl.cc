// Lint fixture (never compiled): R009 — std::endl outside tests/ and
// tools/. Scanned by lint_test; line numbers below are asserted there. This
// file lives under testdata, which the rule deliberately does not exempt.
#include <iostream>

namespace maroon {

void EndlFires() {
  std::cout << "row" << std::endl;  // R009 expected on this line (9)
}

void QualifiedOnlyFires() {
  std::cerr << 42 << std::endl;  // R009 expected on this line (13)
}

void SuppressedIsSilent() {
  // maroon-lint: allow(R009)
  std::cout << "quiet" << std::endl;
}

void NewlineIsClean() {
  std::cout << "row\n";
  std::cout.flush();
}

void UnqualifiedEndlIsClean() {
  // A member or local named endl is not the std manipulator.
  struct Logger {
    int endl = 0;
  } logger;
  logger.endl = 1;
}

}  // namespace maroon
