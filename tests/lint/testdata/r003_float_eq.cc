// Lint fixture (never compiled): R003 — floating-point ==/!= comparisons.
// Scanned by lint_test; line numbers below are asserted there.

namespace maroon {

bool PositiveComparisons(double p) {
  if (p == 1.0) return true;  // R003 expected on this line (7)
  return p != 0.5;            // R003 expected on this line (8)
}

bool IntegersAreClean(int n) { return n == 1 || n != 2; }

bool EpsilonStyleIsClean(double p) { return p > 1.0 - 1e-9; }

const char* StringsAreClean() { return "p == 1.0 inside a literal"; }

bool SuppressedIsSilent(double p) {
  return p == 1.0;  // maroon-lint: allow(R003)
}

}  // namespace maroon
