// Lint fixture (never compiled): R006 — raw assert() outside src/common/.
// Scanned by lint_test; line numbers below are asserted there.
#include <cassert>

namespace maroon {

void PositiveAssert(int n) {
  assert(n > 0);  // R006 expected on this line (8)
}

void StaticAssertIsClean() { static_assert(sizeof(int) >= 4, "size"); }

void SuppressedIsSilent(int n) {
  assert(n > 0);  // maroon-lint: allow(R006)
}

}  // namespace maroon
