// Lint fixture (never compiled): R008 — raw std::thread/std::jthread
// construction outside src/common/thread_pool.*. Scanned by lint_test; line
// numbers below are asserted there.
#include <thread>
#include <vector>

namespace maroon {

void RawThreadFires() {
  std::thread worker([] {});  // R008 expected on this line (10)
  worker.join();
}

void RawJthreadFires() {
  std::jthread helper([] {});  // R008 expected on this line (15)
}

void ThreadVectorFires() {
  std::vector<std::thread> workers;  // R008 expected on this line (19)
  for (auto& w : workers) w.join();
}

void SuppressedIsSilent() {
  // maroon-lint: allow(R008)
  std::thread quiet([] {});
  quiet.join();
}

void ThisThreadIsClean() {
  std::this_thread::yield();
}

}  // namespace maroon
