// Lint fixture (never compiled): R004 — banned APIs.
// Scanned by lint_test; line numbers below are asserted there.
#include <cstdlib>
#include <regex>  // R004 expected on this line (4)

namespace maroon {

int PositiveCalls(const char* text) {
  int a = atoi(text);                // R004 expected on this line (9)
  double b = strtod(text, nullptr);  // R004 expected on this line (10)
  int c = std::rand();               // R004 expected on this line (11)
  return a + static_cast<int>(b) + c;
}

double EndPointerIsClean(const char* text) {
  char* end = nullptr;
  return strtod(text, &end);
}

struct Rng {
  int rand();
};

int MemberNamedRandIsClean(Rng& rng) { return rng.rand(); }

int SuppressedIsSilent(const char* text) {
  return atoi(text);  // maroon-lint: allow(R004)
}

}  // namespace maroon
