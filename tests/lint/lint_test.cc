#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "lint/concurrency.h"
#include "lint/linter.h"
#include "lint/rules.h"
#include "lint/symbols.h"

namespace maroon {
namespace lint {
namespace {

constexpr char kRoot[] = MAROON_SOURCE_DIR;

/// Lints one fixture under tests/lint/testdata/ through the full RunLint
/// path (explicit file args bypass the testdata exclusion).
LintResult LintFixture(const std::string& name) {
  LintOptions options;
  options.root = kRoot;
  options.paths = {std::string(kRoot) + "/tests/lint/testdata/" + name};
  auto result = RunLint(options);
  MAROON_CHECK(result.ok()) << result.status();
  return *std::move(result);
}

/// Lints in-memory content (unit tests for lexer-level behavior).
std::vector<Finding> LintSource(const std::string& rel_path,
                                const std::string& content) {
  const SourceFile file = MakeSourceFile(rel_path, content);
  const FunctionRegistry registry = CollectFunctionRegistry(file.tokens);
  std::vector<Finding> findings;
  LintFile(file, registry, &findings);
  return findings;
}

/// Runs only the scope-aware concurrency rules (R011-R014) on in-memory
/// content, including any lock-order cycles within the file itself.
std::vector<Finding> LintConcurrency(const std::string& rel_path,
                                     const std::string& content) {
  const SourceFile file = MakeSourceFile(rel_path, content);
  const FileSymbols symbols = BuildFileSymbols(file);
  std::map<std::string, ClassModel> classes;
  MergeClassModels(symbols.classes, &classes);
  ConcurrencyContext context;
  context.classes = &classes;
  std::vector<Finding> findings;
  LockOrderGraph graph;
  CheckConcurrency(file, symbols, context, &findings, &graph);
  for (const Finding& f : graph.CheckCycles()) findings.push_back(f);
  return findings;
}

std::vector<int> LinesOf(const LintResult& result, const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : result.findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

std::string Render(const LintResult& result) { return RenderText(result); }

TEST(LintRuleTest, R001CatchesUnguardedResultAccess) {
  const LintResult result = LintFixture("r001_unguarded.cc");
  EXPECT_EQ(LinesOf(result, "R001"), (std::vector<int>{11, 16}))
      << Render(result);
  // Guarded, checked, and suppressed functions stay silent; no other rule
  // fires on this fixture.
  EXPECT_EQ(result.findings.size(), 2u) << Render(result);
}

TEST(LintRuleTest, R002CatchesDiscardedStatusReturns) {
  const LintResult result = LintFixture("r002_discarded.cc");
  EXPECT_EQ(LinesOf(result, "R002"), (std::vector<int>{18, 19, 20}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 3u) << Render(result);
}

TEST(LintRuleTest, R003CatchesFloatEquality) {
  const LintResult result = LintFixture("r003_float_eq.cc");
  EXPECT_EQ(LinesOf(result, "R003"), (std::vector<int>{7, 8}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 2u) << Render(result);
}

TEST(LintRuleTest, R004CatchesBannedApis) {
  const LintResult result = LintFixture("r004_banned_api.cc");
  EXPECT_EQ(LinesOf(result, "R004"), (std::vector<int>{4, 9, 10, 11}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 4u) << Render(result);
}

TEST(LintRuleTest, R005CatchesHeaderHygiene) {
  const LintResult result = LintFixture("r005_bad_guard.h");
  EXPECT_EQ(LinesOf(result, "R005"), (std::vector<int>{3, 6}))
      << Render(result);
  const Finding& guard = result.findings.front();
  EXPECT_NE(
      guard.message.find("MAROON_TESTS_LINT_TESTDATA_R005_BAD_GUARD_H_"),
      std::string::npos)
      << guard.message;
}

TEST(LintRuleTest, R005SuppressionsSilenceBothSites) {
  const LintResult result = LintFixture("r005_suppressed.h");
  EXPECT_TRUE(result.findings.empty()) << Render(result);
}

TEST(LintRuleTest, R006CatchesRawAssert) {
  const LintResult result = LintFixture("r006_assert.cc");
  EXPECT_EQ(LinesOf(result, "R006"), (std::vector<int>{8}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 1u) << Render(result);
}

TEST(LintRuleTest, R006ExemptsSrcCommon) {
  const std::string content = "void F(int n) { assert(n > 0); }\n";
  EXPECT_TRUE(LintSource("src/common/scratch.cc", content).empty());
  EXPECT_EQ(LintSource("src/core/scratch.cc", content).size(), 1u);
}

TEST(LintRuleTest, R007CatchesSystemClockNow) {
  const LintResult result = LintFixture("r007_system_clock.cc");
  EXPECT_EQ(LinesOf(result, "R007"), (std::vector<int>{9}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 1u) << Render(result);
}

TEST(LintRuleTest, R007ExemptsObsAndCommon) {
  const std::string content =
      "auto T() { return std::chrono::system_clock::now(); }\n";
  EXPECT_TRUE(LintSource("src/obs/scratch.cc", content).empty());
  EXPECT_TRUE(LintSource("src/common/scratch.cc", content).empty());
  EXPECT_EQ(LintSource("src/core/scratch.cc", content).size(), 1u);
  EXPECT_EQ(LintSource("tools/scratch.cpp", content).size(), 1u);
}

TEST(LintRuleTest, R008CatchesRawThreads) {
  const LintResult result = LintFixture("r008_raw_thread.cc");
  EXPECT_EQ(LinesOf(result, "R008"), (std::vector<int>{10, 15, 19}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 3u) << Render(result);
}

TEST(LintRuleTest, R008ExemptsThreadPool) {
  const std::string content =
      "#include <thread>\n"
      "void F() { std::thread t([] {}); t.join(); }\n";
  // Count R008 findings specifically: header paths also run R005 hygiene.
  const auto r008_count = [&](const std::string& rel_path) {
    size_t n = 0;
    for (const Finding& f : LintSource(rel_path, content)) {
      if (f.rule == "R008") ++n;
    }
    return n;
  };
  EXPECT_EQ(r008_count("src/common/thread_pool.cc"), 0u);
  EXPECT_EQ(r008_count("src/common/thread_pool.h"), 0u);
  EXPECT_EQ(r008_count("src/common/scratch.cc"), 1u);
  EXPECT_EQ(r008_count("src/matching/scratch.cc"), 1u);
  EXPECT_EQ(r008_count("tools/scratch.cpp"), 1u);
}

TEST(LintRuleTest, R009CatchesStdEndl) {
  const LintResult result = LintFixture("r009_endl.cc");
  EXPECT_EQ(LinesOf(result, "R009"), (std::vector<int>{9, 13}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 2u) << Render(result);
}

TEST(LintRuleTest, R009ExemptsTestsAndToolsButNotTestdata) {
  const std::string content =
      "#include <iostream>\n"
      "void F() { std::cout << 1 << std::endl; }\n";
  EXPECT_EQ(LintSource("src/obs/scratch.cc", content).size(), 1u);
  EXPECT_EQ(LintSource("src/core/scratch.cc", content).size(), 1u);
  EXPECT_TRUE(LintSource("tests/obs/scratch_test.cc", content).empty());
  EXPECT_TRUE(LintSource("tools/scratch.cpp", content).empty());
  // Fixture trees under tests/ and tools/ exist to exercise the rules, so
  // the exemption does not reach them.
  EXPECT_EQ(LintSource("tests/lint/testdata/scratch.cc", content).size(), 1u);
}

TEST(LintRuleTest, R010CatchesDiscardedIoReturns) {
  const LintResult result = LintFixture("r010_unchecked_io.cc");
  EXPECT_EQ(LinesOf(result, "R010"), (std::vector<int>{9, 10, 11, 12}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 4u) << Render(result);
}

TEST(LintRuleTest, R010ExemptsTestsAndToolsButNotTestdata) {
  const std::string content =
      "#include <cstdio>\n"
      "void F(FILE* f) { fflush(f); }\n";
  EXPECT_EQ(LintSource("src/common/scratch.cc", content).size(), 1u);
  EXPECT_EQ(LintSource("src/core/scratch.cc", content).size(), 1u);
  EXPECT_TRUE(LintSource("tests/core/scratch_test.cc", content).empty());
  EXPECT_TRUE(LintSource("tools/scratch.cpp", content).empty());
  EXPECT_EQ(LintSource("tests/lint/testdata/scratch.cc", content).size(), 1u);
}

TEST(LintRuleTest, R011CatchesUnguardedFieldAccessAndRequiresViolations) {
  const LintResult result = LintFixture("r011_guarded_by.cc");
  EXPECT_EQ(LinesOf(result, "R011"), (std::vector<int>{11, 15}))
      << Render(result);
  // Locked, MAROON_REQUIRES-annotated, and suppressed accesses stay silent.
  EXPECT_EQ(result.findings.size(), 2u) << Render(result);
}

TEST(LintRuleTest, R012CatchesLockOrderCycles) {
  const LintResult result = LintFixture("r012_lock_order.cc");
  EXPECT_EQ(LinesOf(result, "R012"), (std::vector<int>{13, 18}))
      << Render(result);
  // scoped_lock arguments create no inter-argument edges; the suppressed
  // reverse edge is excluded from cycle detection.
  EXPECT_EQ(result.findings.size(), 2u) << Render(result);
}

TEST(LintRuleTest, R013CatchesBlockingIoUnderLock) {
  const LintResult result = LintFixture("r013_blocking_io.cc");
  EXPECT_EQ(LinesOf(result, "R013"), (std::vector<int>{15, 20}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 2u) << Render(result);
}

TEST(LintRuleTest, R014CatchesRelaxedAtomicsOutsideAllowlist) {
  const LintResult result = LintFixture("r014_relaxed_atomic.cc");
  EXPECT_EQ(LinesOf(result, "R014"), (std::vector<int>{10}))
      << Render(result);
  EXPECT_EQ(result.findings.size(), 1u) << Render(result);
}

TEST(LintRuleTest, R014AllowlistCoversCounterFiles) {
  const std::string content =
      "#include <atomic>\n"
      "std::atomic<int> c{0};\n"
      "void F() { c.fetch_add(1, std::memory_order_relaxed); }\n";
  EXPECT_TRUE(LintConcurrency("src/obs/metrics.cc", content).empty());
  EXPECT_TRUE(LintConcurrency("tests/obs/scratch_test.cc", content).empty());
  EXPECT_EQ(LintConcurrency("src/core/scratch.cc", content).size(), 1u);
  EXPECT_EQ(
      LintConcurrency("tests/lint/testdata/scratch.cc", content).size(), 1u);
}

TEST(LintRuleTest, R001CatchesAutoBindingFromResultCall) {
  const std::string content =
      "#include \"common/result.h\"\n"
      "Result<int> MakeValue();\n"
      "int F() {\n"
      "  auto r = MakeValue();\n"
      "  return *r;\n"
      "}\n";
  const std::vector<Finding> findings =
      LintSource("src/core/scratch.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R001");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintRuleTest, R001AutoBindingGuardedIsClean) {
  const std::string content =
      "#include \"common/result.h\"\n"
      "Result<int> MakeValue();\n"
      "int F() {\n"
      "  const auto r = MakeValue();\n"
      "  if (!r.ok()) return -1;\n"
      "  return *r;\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/core/scratch.cc", content).empty());
}

TEST(LintRuleTest, R001AutoBindingFromStatusFunctionIsNotArmed) {
  // Status (no payload) has no unguarded-access hazard; only Result<T>
  // producers arm the auto-binding check.
  const std::string content =
      "#include \"common/status.h\"\n"
      "Status DoThing();\n"
      "bool F() {\n"
      "  auto s = DoThing();\n"
      "  return s.ok();\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/core/scratch.cc", content).empty());
}

TEST(LintBaselineTest, RoundTripMatchesAndRemovesEverything) {
  LintResult result;
  result.findings.push_back({"R011", "src/a.cc", 10, 3, "msg one"});
  result.findings.push_back({"R013", "src/b.cc", 20, 5, "msg two"});
  const std::string path = ::testing::TempDir() + "/maroon_baseline.txt";
  {
    std::ofstream out(path);
    out << SerializeBaseline(result);
  }
  auto baseline = LoadBaseline(path);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::vector<BaselineEntry> stale = ApplyBaseline(*baseline, &result);
  EXPECT_TRUE(stale.empty());
  EXPECT_TRUE(result.findings.empty());
}

TEST(LintBaselineTest, StaleEntriesAreReturned) {
  Baseline baseline;
  baseline.entries.push_back({"R011", "src/a.cc", 10});
  LintResult result;  // the baselined finding no longer occurs
  const std::vector<BaselineEntry> stale = ApplyBaseline(baseline, &result);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "R011");
  EXPECT_EQ(stale[0].file, "src/a.cc");
  EXPECT_EQ(stale[0].line, 10);
}

TEST(LintBaselineTest, UnmatchedFindingsSurvive) {
  Baseline baseline;
  baseline.entries.push_back({"R011", "src/a.cc", 10});
  LintResult result;
  result.findings.push_back({"R011", "src/a.cc", 10, 1, "matched"});
  result.findings.push_back({"R012", "src/c.cc", 7, 1, "not baselined"});
  const std::vector<BaselineEntry> stale = ApplyBaseline(baseline, &result);
  EXPECT_TRUE(stale.empty());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "R012");
}

TEST(LintBaselineTest, EachEntryConsumesOneFinding) {
  Baseline baseline;
  baseline.entries.push_back({"R011", "src/a.cc", 10});
  LintResult result;
  result.findings.push_back({"R011", "src/a.cc", 10, 1, "first"});
  result.findings.push_back({"R011", "src/a.cc", 10, 9, "second, same line"});
  const std::vector<BaselineEntry> stale = ApplyBaseline(baseline, &result);
  EXPECT_TRUE(stale.empty());
  EXPECT_EQ(result.findings.size(), 1u);
}

TEST(LintBaselineTest, MalformedLinesAreErrors) {
  const std::string path = ::testing::TempDir() + "/maroon_bad_baseline.txt";
  {
    std::ofstream out(path);
    out << "# comment is fine\n\nR011 src/a.cc:notanumber message\n";
  }
  EXPECT_FALSE(LoadBaseline(path).ok());
}

TEST(LintLexerTest, LiteralsAndCommentsAreNotCode) {
  // Violation-shaped text inside strings, raw strings, and comments must
  // never fire a rule.
  const std::string content =
      "const char* a = \"assert(x); p == 1.0; atoi(s);\";\n"
      "const char* b = R\"(assert(y); q != 0.5)\";\n"
      "// assert(z); r == 2.0; rand();\n"
      "/* strtod(s, nullptr); using namespace std; */\n";
  EXPECT_TRUE(LintSource("src/core/scratch.cc", content).empty());
}

TEST(LintLexerTest, TokenizerTracksLinesThroughBlockComments) {
  const std::string content = "/* line one\nline two */\nassert(n);\n";
  const std::vector<Finding> findings =
      LintSource("src/core/scratch.cc", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintRuleTest, ExpectedGuardFollowsConvention) {
  EXPECT_EQ(ExpectedGuard("src/common/result.h"), "MAROON_COMMON_RESULT_H_");
  EXPECT_EQ(ExpectedGuard("tests/testing/paper_example.h"),
            "MAROON_TESTS_TESTING_PAPER_EXAMPLE_H_");
  EXPECT_EQ(ExpectedGuard("src/lint/lexer.h"), "MAROON_LINT_LEXER_H_");
}

TEST(LintRuleTest, AllowAllSuppresssEveryRule) {
  const std::string content =
      "void F(int n) {\n"
      "  assert(n > 0);  // maroon-lint: allow(all)\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/core/scratch.cc", content).empty());
}

TEST(LintJsonTest, RenderJsonEscapesAndStructures) {
  LintResult result;
  result.files_scanned = 1;
  result.findings.push_back(
      {"R004", "src/a.cc", 3, 7, "bad \"quote\" and \\slash"});
  const std::string json = RenderJson(result);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"R004\""), std::string::npos) << json;
  EXPECT_NE(json.find("bad \\\"quote\\\" and \\\\slash"), std::string::npos)
      << json;
}

/// The acceptance gate: the real tree must be lint-clean. Fixture dirs named
/// testdata are excluded by default, so the seeded violations above do not
/// trip this.
TEST(LintSelfCheckTest, RepositoryTreeIsClean) {
  LintOptions options;
  options.root = kRoot;
  auto result = RunLint(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->files_scanned, 150u);
  EXPECT_TRUE(result->findings.empty())
      << "the tree must stay lint-clean:\n" << RenderText(*result);
}

}  // namespace
}  // namespace lint
}  // namespace maroon
