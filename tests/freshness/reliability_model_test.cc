#include "freshness/reliability_model.h"

#include <gtest/gtest.h>

#include "datagen/recruitment_generator.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kOrg;
using testing::kTitle;

TEST(ReliabilityModelTest, SmoothedReliability) {
  ReliabilityModel model;
  for (int i = 0; i < 8; ++i) model.AddObservation(0, "Title", true);
  for (int i = 0; i < 2; ++i) model.AddObservation(0, "Title", false);
  // (8 + 1) / (10 + 2) = 0.75 with α = 1.
  EXPECT_DOUBLE_EQ(model.Reliability(0, "Title"), 0.75);
  EXPECT_DOUBLE_EQ(model.ErrorRate(0, "Title"), 0.2);
  EXPECT_EQ(model.ObservationCount(0, "Title"), 10);
}

TEST(ReliabilityModelTest, UntrainedDefaults) {
  ReliabilityModel model;
  EXPECT_DOUBLE_EQ(model.Reliability(3, "X"), 1.0);
  EXPECT_DOUBLE_EQ(model.ErrorRate(3, "X"), 0.0);
  EXPECT_EQ(model.ObservationCount(3, "X"), 0);

  ReliabilityModelOptions options;
  options.default_reliability = 0.5;
  ReliabilityModel pessimistic(options);
  EXPECT_DOUBLE_EQ(pessimistic.Reliability(3, "X"), 0.5);
}

TEST(ReliabilityModelTest, PerSourceAndAttribute) {
  ReliabilityModel model;
  model.AddObservation(0, "Title", true);
  model.AddObservation(1, "Title", false);
  EXPECT_GT(model.Reliability(0, "Title"), model.Reliability(1, "Title"));
  // Other attributes of the same source are independent.
  EXPECT_DOUBLE_EQ(model.Reliability(1, "Org"), 1.0);
}

TEST(ReliabilityModelTest, TrainStaleValuesAreNotErrors) {
  // r3/r7 publish stale (but genuine) values -> Facebook stays reliable.
  const Dataset dataset = testing::PaperRecords();
  const ReliabilityModel model =
      ReliabilityModel::Train(dataset, {"david_1"});
  EXPECT_GT(model.ObservationCount(1, kTitle), 0);
  EXPECT_DOUBLE_EQ(model.ErrorRate(1, kTitle), 0.0);
  EXPECT_GT(model.Reliability(1, kTitle), 0.5);
}

TEST(ReliabilityModelTest, TrainDetectsInjectedErrors) {
  RecruitmentOptions options;
  options.seed = 31;
  options.num_entities = 80;
  options.num_names = 30;
  options.social_source_error_rate = 0.3;
  const Dataset dataset = GenerateRecruitmentDataset(options);
  std::vector<EntityId> entities;
  for (const auto& [id, t] : dataset.targets()) entities.push_back(id);
  const ReliabilityModel model = ReliabilityModel::Train(dataset, entities);

  // CareerHub (0) publishes only genuine values; the social sources now err
  // roughly 30% of the time.
  EXPECT_LT(model.ErrorRate(0, kAttrTitle), 0.02);
  EXPECT_GT(model.ErrorRate(1, kAttrTitle), 0.15);
  EXPECT_GT(model.ErrorRate(2, kAttrOrganization), 0.15);
  EXPECT_GT(model.Reliability(0, kAttrTitle),
            model.Reliability(1, kAttrTitle));
}

TEST(ReliabilityModelTest, NoErrorsWithoutInjection) {
  RecruitmentOptions options;
  options.seed = 31;
  options.num_entities = 40;
  options.num_names = 20;
  const Dataset dataset = GenerateRecruitmentDataset(options);
  std::vector<EntityId> entities;
  for (const auto& [id, t] : dataset.targets()) entities.push_back(id);
  const ReliabilityModel model = ReliabilityModel::Train(dataset, entities);
  for (SourceId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(model.ErrorRate(s, kAttrTitle), 0.0) << "source " << s;
  }
}

}  // namespace
}  // namespace maroon
