#include <gtest/gtest.h>

#include "datagen/recruitment_generator.h"
#include "freshness/freshness_model.h"

namespace maroon {
namespace {

TEST(EpochFreshnessTest, EpochLocalDistributions) {
  FreshnessModelOptions options;
  options.epoch_width = 10;
  options.min_epoch_observations = 3;
  FreshnessModel model(options);
  // Early epoch (2000-2009): always fresh.
  for (int i = 0; i < 5; ++i) model.AddObservation(0, "T", 0, 2003);
  // Late epoch (2010-2019): always stale by 2.
  for (int i = 0; i < 5; ++i) model.AddObservation(0, "T", 2, 2012);
  model.Finalize();

  EXPECT_DOUBLE_EQ(model.Delay(0, 0, "T", 2003), 1.0);
  EXPECT_DOUBLE_EQ(model.Delay(2, 0, "T", 2003), 0.0);
  EXPECT_DOUBLE_EQ(model.Delay(0, 0, "T", 2012), 0.0);
  EXPECT_DOUBLE_EQ(model.Delay(2, 0, "T", 2012), 1.0);
  // Global (untimestamped) view mixes both epochs.
  EXPECT_DOUBLE_EQ(model.Delay(0, 0, "T"), 0.5);
  EXPECT_EQ(model.EpochObservationCount(0, "T", 2003), 5);
  EXPECT_EQ(model.EpochObservationCount(0, "T", 2025), 0);
}

TEST(EpochFreshnessTest, SparseEpochFallsBackToGlobal) {
  FreshnessModelOptions options;
  options.epoch_width = 10;
  options.min_epoch_observations = 10;
  FreshnessModel model(options);
  for (int i = 0; i < 5; ++i) model.AddObservation(0, "T", 0, 2003);
  for (int i = 0; i < 5; ++i) model.AddObservation(0, "T", 2, 2012);
  model.Finalize();
  // Both epochs hold only 5 < 10 observations -> the timestamped query
  // returns the global mixture.
  EXPECT_DOUBLE_EQ(model.Delay(0, 0, "T", 2003), 0.5);
  EXPECT_DOUBLE_EQ(model.Delay(2, 0, "T", 2012), 0.5);
}

TEST(EpochFreshnessTest, DisabledEpochsMatchGlobal) {
  FreshnessModel model;  // epoch_width = 0
  model.AddObservation(0, "T", 0, 2003);
  model.AddObservation(0, "T", 4, 2012);
  model.Finalize();
  EXPECT_DOUBLE_EQ(model.Delay(0, 0, "T", 2003), model.Delay(0, 0, "T"));
  EXPECT_DOUBLE_EQ(model.Delay(4, 0, "T", 2012), model.Delay(4, 0, "T"));
  EXPECT_EQ(model.EpochObservationCount(0, "T", 2003), 0);
}

TEST(EpochFreshnessTest, NegativeTimePointsBucketConsistently) {
  FreshnessModelOptions options;
  options.epoch_width = 10;
  options.min_epoch_observations = 1;
  FreshnessModel model(options);
  model.AddObservation(0, "T", 1, -5);
  model.AddObservation(0, "T", 1, -3);
  model.Finalize();
  // Both land in the same epoch [-10, -1].
  EXPECT_EQ(model.EpochObservationCount(0, "T", -7), 2);
  EXPECT_EQ(model.EpochObservationCount(0, "T", 3), 0);
}

TEST(EpochFreshnessTest, DetectsSourceThatCleanedUpItsPipeline) {
  // A source that lags before 2000 and is perfectly fresh afterwards.
  RecruitmentOptions data_options;
  data_options.seed = 23;
  data_options.num_entities = 150;
  data_options.num_names = 60;
  data_options.sources = DefaultRecruitmentSources();
  SourceConfig& orbit = data_options.sources[1];
  orbit.fresh_probability = {{kAttrOrganization, 0.3},
                             {kAttrTitle, 0.3},
                             {kAttrLocation, 0.3}};
  orbit.fresh_probability_after = {{kAttrOrganization, 1.0},
                                   {kAttrTitle, 1.0},
                                   {kAttrLocation, 1.0}};
  orbit.freshness_change_year = 2000;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);

  std::vector<EntityId> entities;
  for (const auto& [id, t] : dataset.targets()) entities.push_back(id);

  // Train the epoch model directly (Train() uses the default options, so
  // replicate its loop with epochs enabled).
  FreshnessModelOptions options;
  options.epoch_width = 10;
  options.min_epoch_observations = 20;
  FreshnessModel model(options);
  for (const TemporalRecord& r : dataset.records()) {
    const EntityId& label = dataset.LabelOf(r.id());
    auto target = dataset.target(label);
    if (!target.ok()) continue;
    for (const auto& [attribute, values] : r.values()) {
      const TemporalSequence& seq =
          (*target)->ground_truth.sequence(attribute);
      if (seq.empty()) continue;
      for (const Value& v : values) {
        auto delay = ComputeDelay(seq, v, r.timestamp());
        if (delay) {
          model.AddObservation(r.source(), attribute, *delay, r.timestamp());
        }
      }
    }
  }
  model.Finalize();

  // The 1990s epoch should be visibly staler than the 2000s epoch.
  const double early = model.Delay(0, 1, kAttrTitle, 1995);
  const double late = model.Delay(0, 1, kAttrTitle, 2005);
  EXPECT_LT(early, late);
  EXPECT_GT(late, 0.9);
}

}  // namespace
}  // namespace maroon
