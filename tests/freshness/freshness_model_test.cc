#include "freshness/freshness_model.h"

#include <gtest/gtest.h>

#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::DavidBrownProfile;
using testing::kInterests;
using testing::kLocation;
using testing::kOrg;
using testing::kTitle;

TEST(ComputeDelayTest, ExampleSixDelayIsTwo) {
  // r3's Title "Engineer" published 2004; David last held it in 2002.
  const EntityProfile david = DavidBrownProfile();
  auto delay = ComputeDelay(david.sequence(kTitle), "Engineer", 2004);
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(*delay, 2);
}

TEST(ComputeDelayTest, ZeroWhenTimestampInsideInterval) {
  const EntityProfile david = DavidBrownProfile();
  auto delay = ComputeDelay(david.sequence(kTitle), "Engineer", 2001);
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(*delay, 0);
  delay = ComputeDelay(david.sequence(kTitle), "Manager", 2009);
  EXPECT_EQ(*delay, 0);
}

TEST(ComputeDelayTest, UndefinedForUnknownOrFutureValues) {
  const EntityProfile david = DavidBrownProfile();
  // Never in the profile.
  EXPECT_FALSE(
      ComputeDelay(david.sequence(kTitle), "Director", 2011).has_value());
  // Manager starts 2003; published 2001 — value only occurs later.
  EXPECT_FALSE(
      ComputeDelay(david.sequence(kTitle), "Manager", 2001).has_value());
}

TEST(ComputeDelayTest, LongDelays) {
  const EntityProfile david = DavidBrownProfile();
  // r7: Title "Engineer" published 2012; last held 2002 -> delay 10.
  auto delay = ComputeDelay(david.sequence(kTitle), "Engineer", 2012);
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(*delay, 10);
}

TEST(FreshnessModelTest, DistributionNormalizes) {
  FreshnessModel model;
  model.AddObservation(0, "Title", 0);
  model.AddObservation(0, "Title", 0);
  model.AddObservation(0, "Title", 0);
  model.AddObservation(0, "Title", 2);
  model.Finalize();
  EXPECT_DOUBLE_EQ(model.Delay(0, 0, "Title"), 0.75);
  EXPECT_DOUBLE_EQ(model.Delay(2, 0, "Title"), 0.25);
  EXPECT_DOUBLE_EQ(model.Delay(1, 0, "Title"), 0.0);
  EXPECT_EQ(model.ObservationCount(0, "Title"), 4);
}

TEST(FreshnessModelTest, MissingDataDefaultsToFresh) {
  FreshnessModel fresh_default;
  fresh_default.Finalize();
  EXPECT_DOUBLE_EQ(fresh_default.Delay(0, 9, "Title"), 1.0);
  EXPECT_DOUBLE_EQ(fresh_default.Delay(3, 9, "Title"), 0.0);

  FreshnessModelOptions options;
  options.missing_data_is_fresh = false;
  FreshnessModel unknown_default(options);
  unknown_default.Finalize();
  EXPECT_DOUBLE_EQ(unknown_default.Delay(0, 9, "Title"), 0.0);
}

TEST(FreshnessModelTest, IsFreshRequiresEveryAttribute) {
  FreshnessModel model = testing::PaperFreshnessModel();
  const std::vector<Attribute> attrs = testing::PaperAttributes();
  // Google+ (0) and Twitter (2): fresh at µ = 0.9.
  EXPECT_TRUE(model.IsFresh(0, attrs, 0.9));
  EXPECT_TRUE(model.IsFresh(2, attrs, 0.9));
  // Facebook (1): stale on Organization/Title.
  EXPECT_FALSE(model.IsFresh(1, attrs, 0.9));
  // Facebook is fresh when only Location/Interests matter.
  EXPECT_TRUE(model.IsFresh(1, {kLocation, kInterests}, 0.9));
}

TEST(FreshnessModelTest, FreshnessScoreAverages) {
  FreshnessModel model = testing::PaperFreshnessModel();
  const std::vector<Attribute> attrs = testing::PaperAttributes();
  EXPECT_NEAR(model.FreshnessScore(0, attrs), 0.95, 1e-9);
  // Facebook: (0.3 + 0.3 + 0.95 + 0.95)/4.
  EXPECT_NEAR(model.FreshnessScore(1, attrs), 0.625, 1e-9);
  EXPECT_DOUBLE_EQ(model.FreshnessScore(0, {}), 0.0);
}

TEST(FreshnessModelTest, TrainFromDatasetLearnsFacebookStaleness) {
  const Dataset dataset = testing::PaperRecords();
  FreshnessModel model =
      FreshnessModel::Train(dataset, {"david_1"});
  // r3 (Facebook 2004): Title Engineer delay 2, Organization S3/XJek delays.
  // r7 (Facebook 2012): Title Engineer delay 10.
  EXPECT_GT(model.ObservationCount(1, kTitle), 0);
  EXPECT_LT(model.Delay(0, 1, kTitle), 0.9);
  EXPECT_GT(model.Delay(2, 1, kTitle), 0.0);
  EXPECT_GT(model.Delay(10, 1, kTitle), 0.0);
  // Google+ r1/r2 publish current values -> delay 0 mass.
  EXPECT_GT(model.Delay(0, 0, kTitle), 0.9);
}

TEST(FreshnessModelTest, TrainSkipsNonTrainingEntities) {
  const Dataset dataset = testing::PaperRecords();
  FreshnessModel model = FreshnessModel::Train(dataset, {"someone_else"});
  EXPECT_EQ(model.ObservationCount(0, kTitle), 0);
  EXPECT_EQ(model.ObservationCount(1, kTitle), 0);
}

TEST(FreshnessModelTest, ValuesAbsentFromProfileAreSkipped) {
  // r5's Title "Director" is not in the clean profile -> no delay defined.
  const Dataset dataset = testing::PaperRecords();
  FreshnessModel model = FreshnessModel::Train(dataset, {"david_1"});
  // Organization observations exist only from records whose values appear in
  // the ground-truth profile (S3/XJek); WSO2 (r8/r9) contributes nothing.
  EXPECT_GT(model.ObservationCount(0, kOrg), 0);
}

}  // namespace
}  // namespace maroon
