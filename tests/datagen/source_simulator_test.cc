#include "datagen/source_simulator.h"

#include <gtest/gtest.h>

#include "datagen/career_model.h"

namespace maroon {
namespace {

EntityProfile StaticProfile(TimePoint from, TimePoint to) {
  EntityProfile p("e1", "Alice Chen");
  (void)p.sequence(kAttrTitle).Append(
      Triple(from, to, MakeValueSet({"Engineer"})));
  (void)p.sequence(kAttrOrganization)
      .Append(Triple(from, to, MakeValueSet({"Acme"})));
  return p;
}

EntityProfile ChangingProfile() {
  EntityProfile p("e1", "Alice Chen");
  TemporalSequence& title = p.sequence(kAttrTitle);
  (void)title.Append(Triple(2000, 2004, MakeValueSet({"Engineer"})));
  (void)title.Append(Triple(2005, 2014, MakeValueSet({"Manager"})));
  return p;
}

Dataset FreshDataset() {
  Dataset d;
  d.SetAttributes({kAttrOrganization, kAttrTitle, kAttrLocation});
  d.AddSource("S");
  return d;
}

TEST(SourceSimulatorTest, PublicationRateControlsVolume) {
  const EntityProfile profile = StaticProfile(2000, 2019);  // 20 years
  SourceConfig config;
  config.name = "S";
  config.publication_rate = 1.0;
  Dataset dataset = FreshDataset();
  Random rng(1);
  SourceSimulator simulator(config, 0);
  const size_t emitted = simulator.EmitRecords(profile, dataset, rng);
  EXPECT_EQ(emitted, 20u);
  EXPECT_EQ(dataset.NumRecords(), 20u);

  config.publication_rate = 0.0;
  Dataset empty = FreshDataset();
  SourceSimulator silent(config, 0);
  Random rng2(1);
  EXPECT_EQ(silent.EmitRecords(profile, empty, rng2), 0u);
}

TEST(SourceSimulatorTest, ActiveFromBoundsTimestamps) {
  const EntityProfile profile = StaticProfile(2000, 2019);
  SourceConfig config;
  config.name = "S";
  config.publication_rate = 1.0;
  config.active_from = 2010;
  Dataset dataset = FreshDataset();
  Random rng(2);
  SourceSimulator simulator(config, 0);
  simulator.EmitRecords(profile, dataset, rng);
  ASSERT_GT(dataset.NumRecords(), 0u);
  for (const TemporalRecord& r : dataset.records()) {
    EXPECT_GE(r.timestamp(), 2010);
  }
}

TEST(SourceSimulatorTest, FreshSourcePublishesCurrentValues) {
  const EntityProfile profile = ChangingProfile();
  SourceConfig config;
  config.name = "S";
  config.publication_rate = 1.0;
  config.fresh_probability = {{kAttrTitle, 1.0}};
  Dataset dataset = FreshDataset();
  Random rng(3);
  SourceSimulator simulator(config, 0);
  simulator.EmitRecords(profile, dataset, rng);
  for (const TemporalRecord& r : dataset.records()) {
    if (!r.HasAttribute(kAttrTitle)) continue;
    EXPECT_EQ(r.GetValue(kAttrTitle),
              profile.sequence(kAttrTitle).ValuesAt(r.timestamp()))
        << "t=" << r.timestamp();
  }
}

TEST(SourceSimulatorTest, StaleSourcePublishesPastValues) {
  const EntityProfile profile = ChangingProfile();
  SourceConfig config;
  config.name = "S";
  config.publication_rate = 1.0;
  config.fresh_probability = {{kAttrTitle, 0.0}};  // always stale
  config.stale_decay = {{kAttrTitle, 0.3}};
  Dataset dataset = FreshDataset();
  Random rng(4);
  SourceSimulator simulator(config, 0);
  simulator.EmitRecords(profile, dataset, rng);

  // Some record published after 2005 must still carry "Engineer".
  bool lagging_value_seen = false;
  for (const TemporalRecord& r : dataset.records()) {
    if (r.timestamp() >= 2007 && r.HasAttribute(kAttrTitle) &&
        r.GetValue(kAttrTitle) == MakeValueSet({"Engineer"})) {
      lagging_value_seen = true;
    }
    // Values always come from the entity's true history (no fabrication).
    if (r.HasAttribute(kAttrTitle)) {
      const Value& v = r.GetValue(kAttrTitle)[0];
      EXPECT_FALSE(profile.sequence(kAttrTitle).IntervalsOf(v).empty());
    }
  }
  EXPECT_TRUE(lagging_value_seen);
}

TEST(SourceSimulatorTest, CoverageDropsAttributes) {
  const EntityProfile profile = StaticProfile(2000, 2019);
  SourceConfig config;
  config.name = "S";
  config.publication_rate = 1.0;
  config.coverage = {{kAttrTitle, 1.0}, {kAttrOrganization, 0.0}};
  Dataset dataset = FreshDataset();
  Random rng(5);
  SourceSimulator simulator(config, 0);
  simulator.EmitRecords(profile, dataset, rng);
  for (const TemporalRecord& r : dataset.records()) {
    EXPECT_TRUE(r.HasAttribute(kAttrTitle));
    EXPECT_FALSE(r.HasAttribute(kAttrOrganization));
  }
}

TEST(SourceSimulatorTest, ErrorInjectionFabricatesForeignValues) {
  const EntityProfile profile = StaticProfile(2000, 2019);
  SourceConfig config;
  config.name = "S";
  config.publication_rate = 1.0;
  config.error_rate = {{kAttrTitle, 1.0}};
  config.error_pool = {{kAttrTitle, {"Wrong1", "Wrong2"}}};
  Dataset dataset = FreshDataset();
  Random rng(6);
  SourceSimulator simulator(config, 0);
  simulator.EmitRecords(profile, dataset, rng);
  for (const TemporalRecord& r : dataset.records()) {
    if (!r.HasAttribute(kAttrTitle)) continue;
    const Value& v = r.GetValue(kAttrTitle)[0];
    EXPECT_TRUE(v == "Wrong1" || v == "Wrong2") << v;
  }
}

TEST(SourceSimulatorTest, NameTypoRateCorruptsMentions) {
  const EntityProfile profile = StaticProfile(2000, 2019);
  SourceConfig config;
  config.name = "S";
  config.publication_rate = 1.0;
  config.name_typo_rate = 1.0;
  Dataset dataset = FreshDataset();
  Random rng(7);
  SourceSimulator simulator(config, 0);
  simulator.EmitRecords(profile, dataset, rng);
  ASSERT_GT(dataset.NumRecords(), 0u);
  for (const TemporalRecord& r : dataset.records()) {
    EXPECT_NE(r.name(), "Alice Chen");
    // Still labelled with the right ground-truth entity.
    EXPECT_EQ(dataset.LabelOf(r.id()), "e1");
  }
}

TEST(SourceSimulatorTest, EmptyProfileEmitsNothing) {
  SourceConfig config;
  config.name = "S";
  config.publication_rate = 1.0;
  Dataset dataset = FreshDataset();
  Random rng(8);
  SourceSimulator simulator(config, 0);
  EXPECT_EQ(simulator.EmitRecords(EntityProfile("e", "E"), dataset, rng), 0u);
}

}  // namespace
}  // namespace maroon
