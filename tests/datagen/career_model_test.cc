#include "datagen/career_model.h"

#include <gtest/gtest.h>

#include <set>

#include "transition/transition_model.h"

namespace maroon {
namespace {

TEST(CareerModelTest, TitlesVocabulary) {
  const std::vector<Value> titles = CareerModel::Titles();
  EXPECT_EQ(titles.size(), 10u);
  const std::set<Value> set(titles.begin(), titles.end());
  EXPECT_TRUE(set.count("Engineer"));
  EXPECT_TRUE(set.count("Director"));
  EXPECT_TRUE(set.count("IT Contractor"));
}

TEST(CareerModelTest, ProfilesAreCanonicalAndComplete) {
  Random rng(5);
  CareerModel model(CareerModelOptions{}, rng);
  for (int i = 0; i < 30; ++i) {
    Random entity_rng = rng.Fork();
    const EntityProfile p = model.GenerateProfile(
        "e" + std::to_string(i), "Name", entity_rng);
    ASSERT_FALSE(p.empty());
    for (const auto& [attr, seq] : p.sequences()) {
      EXPECT_TRUE(seq.IsCanonical()) << attr;
    }
    // The three career attributes are all present.
    EXPECT_TRUE(p.HasAttribute(kAttrOrganization));
    EXPECT_TRUE(p.HasAttribute(kAttrTitle));
    EXPECT_TRUE(p.HasAttribute(kAttrLocation));
    // Careers span from their start to the horizon, gap-free.
    const Interval span(*p.EarliestTime(), *p.LatestTime());
    EXPECT_EQ(span.end, model.options().horizon);
    EXPECT_TRUE(p.IsCompleteOver(span));
  }
}

TEST(CareerModelTest, DeterministicForSameSeed) {
  Random rng_a(7), rng_b(7);
  CareerModel model_a(CareerModelOptions{}, rng_a);
  CareerModel model_b(CareerModelOptions{}, rng_b);
  Random ea(99), eb(99);
  const EntityProfile pa = model_a.GenerateProfile("e", "N", ea);
  const EntityProfile pb = model_b.GenerateProfile("e", "N", eb);
  EXPECT_EQ(pa.sequence(kAttrTitle).ToString(),
            pb.sequence(kAttrTitle).ToString());
  EXPECT_EQ(pa.sequence(kAttrOrganization).ToString(),
            pb.sequence(kAttrOrganization).ToString());
}

TEST(CareerModelTest, UniversityPrefixIsConsistent) {
  Random rng(11);
  CareerModelOptions options;
  options.num_universities = 10;
  options.num_organizations = 40;
  CareerModel model(options, rng);
  ASSERT_EQ(model.organizations().size(), 40u);
  for (size_t i = 0; i < 10; ++i) EXPECT_TRUE(model.IsUniversity(i));
  for (size_t i = 10; i < 40; ++i) EXPECT_FALSE(model.IsUniversity(i));
}

TEST(CareerModelTest, StableEntityFractionFreezesCareers) {
  Random rng(19);
  CareerModelOptions options;
  options.stable_entity_fraction = 1.0;
  CareerModel model(options, rng);
  for (int i = 0; i < 10; ++i) {
    Random entity_rng = rng.Fork();
    const EntityProfile p =
        model.GenerateProfile("e" + std::to_string(i), "N", entity_rng);
    // Every attribute sequence is a single spell: nothing ever changes.
    for (const auto& [attr, seq] : p.sequences()) {
      EXPECT_EQ(seq.size(), 1u) << attr;
    }
  }
}

TEST(CareerModelTest, ZeroStableFractionKeepsMovers) {
  Random rng(19);
  CareerModel model(CareerModelOptions{}, rng);  // default 0.0
  size_t movers = 0;
  for (int i = 0; i < 20; ++i) {
    Random entity_rng = rng.Fork();
    const EntityProfile p =
        model.GenerateProfile("e" + std::to_string(i), "N", entity_rng);
    if (p.sequence(kAttrTitle).size() > 1) ++movers;
  }
  // Careers spanning decades essentially always change at least once.
  EXPECT_GT(movers, 15u);
}

TEST(CareerModelTest, SeniorTitlesPersistLongerInLearnedModel) {
  // Generate many careers, learn a transition model, and check the Table-7
  // shape: Director self-transition beats Engineer self-transition at Δt=5.
  Random rng(13);
  CareerModel career(CareerModelOptions{}, rng);
  ProfileSet profiles;
  for (int i = 0; i < 400; ++i) {
    Random entity_rng = rng.Fork();
    profiles.push_back(career.GenerateProfile("e" + std::to_string(i), "N",
                                              entity_rng));
  }
  const TransitionModel model =
      TransitionModel::Train(profiles, {kAttrTitle});
  const double director_stays =
      model.Probability(kAttrTitle, "Director", "Director", 5);
  const double engineer_stays =
      model.Probability(kAttrTitle, "Engineer", "Engineer", 5);
  EXPECT_GT(director_stays, engineer_stays);
  // Manager -> Director is a plausible move; Manager -> IT Contractor rare.
  EXPECT_GT(model.Probability(kAttrTitle, "Manager", "Director", 5),
            model.Probability(kAttrTitle, "Manager", "IT Contractor", 5));
}

}  // namespace
}  // namespace maroon
