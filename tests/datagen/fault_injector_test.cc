#include "datagen/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "common/csv.h"
#include "core/dataset_io.h"
#include "datagen/dblp_generator.h"

namespace maroon {
namespace {

using Rows = std::vector<std::vector<std::string>>;

Rows SampleRecordRows() {
  Rows rows;
  rows.push_back({"id", "name", "timestamp", "source", "label", "Org",
                  "Coauthors"});
  for (int i = 0; i < 40; ++i) {
    rows.push_back({std::to_string(i), "Ann Smith",
                    std::to_string(2000 + i % 10), "DBLP", "e1", "Acme",
                    "Bob Jones; Carol White"});
  }
  return rows;
}

Rows SampleProfileRows() {
  Rows rows;
  rows.push_back({"entity_id", "entity_name", "kind", "attribute", "begin",
                  "end", "values"});
  for (int i = 0; i < 30; ++i) {
    rows.push_back({"e1", "Ann Smith", "clean", "Org",
                    std::to_string(2000 + i), std::to_string(2001 + i),
                    "Acme"});
  }
  return rows;
}

TEST(FaultInjectorTest, ZeroRatesInjectNothing) {
  Rows rows = SampleRecordRows();
  const Rows original = rows;
  FaultInjector injector(FaultInjectorOptions{});
  FaultReport report;
  injector.CorruptRecordRows(&rows, &report);
  EXPECT_EQ(report.total(), 0u);
  EXPECT_EQ(rows, original);
}

TEST(FaultInjectorTest, DeterministicUnderSameSeed) {
  FaultInjectorOptions options;
  options.seed = 17;
  options.drop_cell_rate = 0.3;
  options.unknown_source_rate = 0.3;

  Rows a = SampleRecordRows();
  Rows b = SampleRecordRows();
  FaultReport report_a, report_b;
  FaultInjector(options).CorruptRecordRows(&a, &report_a);
  FaultInjector(options).CorruptRecordRows(&b, &report_b);
  EXPECT_EQ(a, b);
  ASSERT_EQ(report_a.total(), report_b.total());
  for (size_t i = 0; i < report_a.injections.size(); ++i) {
    EXPECT_EQ(report_a.injections[i].row, report_b.injections[i].row);
    EXPECT_EQ(report_a.injections[i].fault, report_b.injections[i].fault);
  }
}

TEST(FaultInjectorTest, DropCellShrinksColumnCount) {
  Rows rows = SampleRecordRows();
  FaultInjectorOptions options;
  options.drop_cell_rate = 1.0;
  FaultReport report;
  FaultInjector(options).CorruptRecordRows(&rows, &report);
  EXPECT_EQ(report.CountOf(FaultClass::kDropCell), rows.size() - 1);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].size(), rows[0].size() - 1);
  }
}

TEST(FaultInjectorTest, DuplicateAppendsCopies) {
  Rows rows = SampleRecordRows();
  const size_t before = rows.size();
  FaultInjectorOptions options;
  options.duplicate_record_rate = 0.5;
  FaultReport report;
  FaultInjector(options).CorruptRecordRows(&rows, &report);
  const size_t duplicates = report.CountOf(FaultClass::kDuplicateRecordId);
  EXPECT_GT(duplicates, 0u);
  EXPECT_EQ(rows.size(), before + duplicates);
  // Every appended row is a verbatim copy of an earlier row.
  for (size_t i = before; i < rows.size(); ++i) {
    bool found = false;
    for (size_t j = 1; j < before; ++j) {
      if (rows[i] == rows[j]) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(FaultInjectorTest, UnknownSourceWritesGhostName) {
  Rows rows = SampleRecordRows();
  FaultInjectorOptions options;
  options.unknown_source_rate = 1.0;
  FaultReport report;
  FaultInjector(options).CorruptRecordRows(&rows, &report);
  size_t ghosts = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i][3] == options.ghost_source) ++ghosts;
  }
  EXPECT_EQ(ghosts, report.CountOf(FaultClass::kUnknownSource));
  EXPECT_EQ(ghosts, rows.size() - 1);
}

TEST(FaultInjectorTest, ShuffledTimestampsLeaveTheObservedWindow) {
  Rows rows = SampleRecordRows();
  FaultInjectorOptions options;
  options.shuffle_timestamp_rate = 1.0;
  FaultReport report;
  FaultInjector(options).CorruptRecordRows(&rows, &report);
  EXPECT_EQ(report.CountOf(FaultClass::kShuffleTimestamp), rows.size() - 1);
  // The clean corpus spans [2000, 2009]; shuffled stamps land >= 1000 away.
  for (size_t i = 1; i < rows.size(); ++i) {
    const int t = std::stoi(rows[i][2]);
    EXPECT_TRUE(t <= 2000 - 1000 || t >= 2009 + 1000) << t;
  }
}

TEST(FaultInjectorTest, MangleOnlyTouchesMultiValuedCells) {
  Rows rows = SampleRecordRows();
  // Row 1..20 keep the multi-value; strip it from the rest.
  for (size_t i = 21; i < rows.size(); ++i) rows[i][6] = "Bob Jones";
  FaultInjectorOptions options;
  options.mangle_separator_rate = 1.0;
  FaultReport report;
  FaultInjector(options).CorruptRecordRows(&rows, &report);
  EXPECT_EQ(report.CountOf(FaultClass::kMangleSeparator), 20u);
  for (size_t i = 1; i <= 20; ++i) {
    EXPECT_EQ(rows[i][6], "Bob Jones|Carol White");
  }
  for (size_t i = 21; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][6], "Bob Jones");
  }
}

TEST(FaultInjectorTest, AtMostOneFaultPerRow) {
  Rows rows = SampleRecordRows();
  FaultInjectorOptions options;
  options.drop_cell_rate = 0.5;
  options.unknown_source_rate = 0.5;
  options.shuffle_timestamp_rate = 0.5;
  options.mangle_separator_rate = 0.5;
  FaultReport report;
  FaultInjector(options).CorruptRecordRows(&rows, &report);
  std::vector<size_t> seen;
  for (const FaultInjection& injection : report.injections) {
    EXPECT_EQ(std::count(seen.begin(), seen.end(), injection.row), 0)
        << "row " << injection.row << " corrupted twice";
    seen.push_back(injection.row);
  }
}

TEST(FaultInjectorTest, InvertsProfileIntervals) {
  Rows rows = SampleProfileRows();
  FaultInjectorOptions options;
  options.invert_interval_rate = 1.0;
  FaultReport report;
  FaultInjector(options).CorruptProfileRows(&rows, &report);
  EXPECT_EQ(report.CountOf(FaultClass::kInvertInterval), rows.size() - 1);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(std::stoi(rows[i][4]), std::stoi(rows[i][5]));
  }
}

TEST(FaultInjectorTest, CorruptDirectoryRewritesFiles) {
  const std::string dir = ::testing::TempDir() + "/maroon_fault_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DblpOptions gen;
  gen.num_entities = 20;
  gen.num_names = 5;
  ASSERT_TRUE(WriteDatasetCsv(GenerateDblpCorpus(gen).dataset, dir).ok());

  FaultInjectorOptions options;
  options.seed = 5;
  options.drop_cell_rate = 0.2;
  options.invert_interval_rate = 0.2;
  FaultInjector injector(options);
  auto report = injector.CorruptDirectory(dir);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->total(), 0u);
  EXPECT_GT(report->CountOf(FaultClass::kDropCell), 0u);
  EXPECT_GT(report->CountOf(FaultClass::kInvertInterval), 0u);

  // The corrupted serialization no longer loads strictly.
  EXPECT_FALSE(ReadDatasetCsv(dir).ok());
  const std::string text = report->ToString();
  EXPECT_NE(text.find("DropCell"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectorTest, CorruptDirectoryFailsOnMissingDir) {
  FaultInjector injector(FaultInjectorOptions{});
  EXPECT_FALSE(injector.CorruptDirectory("/nonexistent/dir").ok());
}

}  // namespace
}  // namespace maroon
