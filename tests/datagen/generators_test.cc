#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/dblp_generator.h"
#include "datagen/name_pool.h"
#include "datagen/recruitment_generator.h"
#include "freshness/freshness_model.h"

namespace maroon {
namespace {

TEST(NamePoolTest, GeneratesDistinctNames) {
  Random rng(1);
  const auto names = NamePool::PersonNames(300, rng);
  EXPECT_EQ(names.size(), 300u);
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(), 300u);
}

TEST(NamePoolTest, OrganizationsSplitUniversitiesFirst) {
  Random rng(2);
  const auto orgs = NamePool::OrganizationNames(30, 10, rng);
  EXPECT_EQ(orgs.size(), 30u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NE(orgs[i].find("University"), std::string::npos) << orgs[i];
  }
  EXPECT_EQ(std::set<std::string>(orgs.begin(), orgs.end()).size(), 30u);
}

TEST(NamePoolTest, SharedNameAssignmentCoversAllNames) {
  Random rng(3);
  const auto assignment = NamePool::AssignSharedNames(100, 10, rng);
  EXPECT_EQ(assignment.size(), 100u);
  std::map<size_t, int> counts;
  for (size_t n : assignment) {
    ASSERT_LT(n, 10u);
    ++counts[n];
  }
  // Round-robin: every name shared by exactly 10 entities.
  for (const auto& [name, count] : counts) EXPECT_EQ(count, 10);
}

TEST(TruncateProfilePrefixTest, KeepsFirstFraction) {
  EntityProfile full("e", "E");
  (void)full.sequence("A").Append(Triple(2000, 2009, MakeValueSet({"x"})));
  const EntityProfile clean = TruncateProfilePrefix(full, 0.3);
  EXPECT_EQ(*clean.EarliestTime(), 2000);
  EXPECT_EQ(*clean.LatestTime(), 2002);  // 30% of 10 years = 3 instants
  const EntityProfile all = TruncateProfilePrefix(full, 1.0);
  EXPECT_EQ(*all.LatestTime(), 2009);
  // At least one instant is always kept.
  const EntityProfile tiny = TruncateProfilePrefix(full, 0.0);
  EXPECT_EQ(*tiny.LatestTime(), 2000);
}

TEST(TruncateProfilePrefixTest, ClipsStraddlingTriples) {
  EntityProfile full("e", "E");
  (void)full.sequence("A").Append(Triple(2000, 2003, MakeValueSet({"x"})));
  (void)full.sequence("A").Append(Triple(2004, 2009, MakeValueSet({"y"})));
  const EntityProfile clean = TruncateProfilePrefix(full, 0.5);  // [2000,2004]
  EXPECT_EQ(clean.sequence("A").ValuesAt(2004), MakeValueSet({"y"}));
  EXPECT_TRUE(clean.sequence("A").ValuesAt(2005).empty());
  EXPECT_TRUE(clean.sequence("A").IsCanonical());
}

class RecruitmentGeneratorTest : public ::testing::Test {
 protected:
  static RecruitmentOptions SmallOptions() {
    RecruitmentOptions options;
    options.seed = 99;
    options.num_entities = 60;
    options.num_names = 20;
    return options;
  }
};

TEST_F(RecruitmentGeneratorTest, ProducesLabeledRecordsForAllTargets) {
  const Dataset d = GenerateRecruitmentDataset(SmallOptions());
  EXPECT_EQ(d.targets().size(), 60u);
  EXPECT_EQ(d.sources().size(), 3u);
  EXPECT_GT(d.NumRecords(), 200u);
  // Every record is labeled with a known target.
  for (const TemporalRecord& r : d.records()) {
    const EntityId& label = d.LabelOf(r.id());
    ASSERT_FALSE(label.empty());
    EXPECT_TRUE(d.target(label).ok());
  }
}

TEST_F(RecruitmentGeneratorTest, NameAmbiguityCreatesDecoyCandidates) {
  const Dataset d = GenerateRecruitmentDataset(SmallOptions());
  // 60 entities over 20 names -> 3 entities per name: candidate sets must
  // contain records of other entities (the decoys temporal linkage must
  // reject).
  bool any_decoys = false;
  for (const auto& [id, target] : d.targets()) {
    const auto candidates = d.CandidatesFor(id);
    const auto matches = d.TrueMatchesOf(id);
    if (candidates.size() > matches.size()) any_decoys = true;
  }
  EXPECT_TRUE(any_decoys);
}

TEST_F(RecruitmentGeneratorTest, CleanProfileIsPrefixOfGroundTruth) {
  const Dataset d = GenerateRecruitmentDataset(SmallOptions());
  for (const auto& [id, target] : d.targets()) {
    ASSERT_FALSE(target.ground_truth.empty());
    ASSERT_FALSE(target.clean_profile.empty());
    EXPECT_EQ(*target.clean_profile.EarliestTime(),
              *target.ground_truth.EarliestTime());
    EXPECT_LE(*target.clean_profile.LatestTime(),
              *target.ground_truth.LatestTime());
  }
}

TEST_F(RecruitmentGeneratorTest, DeterministicForSameSeed) {
  const Dataset a = GenerateRecruitmentDataset(SmallOptions());
  const Dataset b = GenerateRecruitmentDataset(SmallOptions());
  ASSERT_EQ(a.NumRecords(), b.NumRecords());
  for (RecordId i = 0; i < a.NumRecords(); ++i) {
    EXPECT_EQ(a.record(i).ToString(), b.record(i).ToString());
  }
}

TEST_F(RecruitmentGeneratorTest, CareerHubIsFreshestSource) {
  const Dataset d = GenerateRecruitmentDataset(SmallOptions());
  std::vector<EntityId> all_targets;
  for (const auto& [id, t] : d.targets()) all_targets.push_back(id);
  const FreshnessModel model = FreshnessModel::Train(d, all_targets);
  const auto& attrs = d.attributes();
  // CareerHub (source 0) publishes only current values.
  EXPECT_GT(model.FreshnessScore(0, attrs), 0.95);
  // The social sources lag on at least one attribute.
  EXPECT_LT(model.FreshnessScore(1, attrs), 0.98);
  EXPECT_TRUE(model.IsFresh(0, attrs, 0.9));
}

TEST(DblpGeneratorTest, MatchesPaperShape) {
  DblpOptions options;
  options.seed = 4;
  const DblpCorpus corpus = GenerateDblpCorpus(options);
  const Dataset& d = corpus.dataset;
  EXPECT_EQ(d.targets().size(), 216u);
  EXPECT_EQ(d.sources().size(), 1u);
  // 216 authors over 21 names -> roughly 10 entities share each name.
  std::set<std::string> names;
  for (const auto& [id, target] : d.targets()) {
    names.insert(target.ground_truth.name());
  }
  EXPECT_EQ(names.size(), 21u);
  EXPECT_GT(d.NumRecords(), 1000u);
}

TEST(DblpGeneratorTest, AffiliationMapperCoversAllOrganizations) {
  DblpOptions options;
  options.seed = 4;
  options.num_entities = 40;
  options.num_names = 8;
  const DblpCorpus corpus = GenerateDblpCorpus(options);
  ASSERT_NE(corpus.affiliation_category_mapper, nullptr);
  for (const auto& [id, target] : corpus.dataset.targets()) {
    const TemporalSequence& seq =
        target.ground_truth.sequence(kAttrAffiliation);
    for (const Triple& tr : seq.triples()) {
      for (const Value& v : tr.values) {
        const Value category =
            corpus.affiliation_category_mapper->Map(kAttrAffiliation, v);
        EXPECT_TRUE(category == "university" || category == "industry")
            << v << " -> " << category;
      }
    }
  }
}

TEST(DblpGeneratorTest, ProfilesAreCanonicalAndRecordsFresh) {
  DblpOptions options;
  options.seed = 6;
  options.num_entities = 30;
  options.num_names = 6;
  const DblpCorpus corpus = GenerateDblpCorpus(options);
  const Dataset& d = corpus.dataset;
  for (const auto& [id, target] : d.targets()) {
    for (const auto& [attr, seq] : target.ground_truth.sequences()) {
      EXPECT_TRUE(seq.IsCanonical()) << id << " " << attr;
    }
  }
  // Records carry the affiliation valid at their timestamp (fresh source).
  for (const TemporalRecord& r : d.records()) {
    const EntityId& label = d.LabelOf(r.id());
    const auto target = d.target(label);
    ASSERT_TRUE(target.ok());
    const ValueSet truth = (*target)->ground_truth.sequence(kAttrAffiliation)
                               .ValuesAt(r.timestamp());
    if (r.HasAttribute(kAttrAffiliation)) {
      EXPECT_EQ(r.GetValue(kAttrAffiliation), truth);
    }
  }
}

}  // namespace
}  // namespace maroon
