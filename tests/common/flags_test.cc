#include "common/flags.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TEST(FlagParserTest, ParsesKeyValueFlags) {
  FlagParser flags({"--entities=100", "--dataset=dblp"});
  EXPECT_TRUE(flags.Has("entities"));
  ASSERT_TRUE(flags.GetInt("entities").ok());
  EXPECT_EQ(*flags.GetInt("entities"), 100);
  EXPECT_EQ(*flags.GetString("dataset"), "dblp");
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  FlagParser flags({"--verbose"});
  EXPECT_TRUE(flags.GetBoolOr("verbose", false));
  EXPECT_FALSE(flags.GetBoolOr("quiet", false));
  EXPECT_TRUE(flags.GetBoolOr("quiet", true));
}

TEST(FlagParserTest, BooleanValueForms) {
  FlagParser flags({"--a=true", "--b=1", "--c=false", "--d=0", "--e=junk"});
  EXPECT_TRUE(flags.GetBoolOr("a", false));
  EXPECT_TRUE(flags.GetBoolOr("b", false));
  EXPECT_FALSE(flags.GetBoolOr("c", true));
  EXPECT_FALSE(flags.GetBoolOr("d", true));
  EXPECT_TRUE(flags.GetBoolOr("e", true));  // unparseable -> fallback
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags({"generate", "--out=dir", "extra"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"generate", "extra"}));
}

TEST(FlagParserTest, DoubleDashEndsFlagParsing) {
  FlagParser flags({"--a=1", "--", "--b=2"});
  EXPECT_TRUE(flags.Has("a"));
  EXPECT_FALSE(flags.Has("b"));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"--b=2"}));
}

TEST(FlagParserTest, MissingFlagsError) {
  FlagParser flags({});
  EXPECT_EQ(flags.GetString("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(flags.GetIntOr("nope", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDoubleOr("nope", 0.5), 0.5);
}

TEST(FlagParserTest, TypeErrors) {
  FlagParser flags({"--n=abc", "--x=1.5z"});
  EXPECT_EQ(flags.GetInt("n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.GetDouble("x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.GetIntOr("n", -1), -1);
}

TEST(FlagParserTest, DoublesAndNegatives) {
  FlagParser flags({"--rate=0.25", "--offset=-3"});
  EXPECT_DOUBLE_EQ(*flags.GetDouble("rate"), 0.25);
  EXPECT_EQ(*flags.GetInt("offset"), -3);
}

TEST(FlagParserTest, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "cmd", "--k=v"};
  FlagParser flags(3, argv);
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"cmd"}));
  EXPECT_EQ(*flags.GetString("k"), "v");
}

TEST(FlagParserTest, LastValueWinsAndNamesSorted) {
  FlagParser flags({"--k=1", "--k=2", "--a=x"});
  EXPECT_EQ(*flags.GetString("k"), "2");
  EXPECT_EQ(flags.FlagNames(), (std::vector<std::string>{"a", "k"}));
}

}  // namespace
}  // namespace maroon
