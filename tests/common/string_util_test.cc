#include "common/string_util.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputGivesSingleEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithDelimiter) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(SplitJoinTest, RoundTrip) {
  const std::string original = "alpha|beta||gamma";
  EXPECT_EQ(Join(Split(original, '|'), "|"), original);
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace("no-ws"), "no-ws");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(ToLowerAsciiTest, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD Case 42!"), "mixed case 42!");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("University of X", "University"));
  EXPECT_FALSE(StartsWith("Uni", "University"));
  EXPECT_TRUE(EndsWith("Quest Software", "Software"));
  EXPECT_FALSE(EndsWith("Soft", "Software"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(TokenizeWordsTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(TokenizeWords("Quest Software, Inc."),
            (std::vector<std::string>{"quest", "software", "inc"}));
  EXPECT_EQ(TokenizeWords("S3/XJek"), (std::vector<std::string>{"s3", "xjek"}));
  EXPECT_TRUE(TokenizeWords("---").empty());
  EXPECT_TRUE(TokenizeWords("").empty());
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.126, 2), "0.13");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace maroon
