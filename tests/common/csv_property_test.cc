#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/random.h"

namespace maroon {
namespace {

/// Fuzz-style property tests for the CSV layer: arbitrary field content
/// round-trips exactly, and arbitrary input bytes never crash the parser.
class CsvRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

std::string RandomField(Random& rng) {
  static const char kAlphabet[] =
      "abcXYZ 0123,\"\n\r;|'\\\t"
      "\xc3\xa9";  // includes the CSV specials and a UTF-8 byte pair
  const int length = static_cast<int>(rng.UniformInt(0, 12));
  std::string out;
  for (int i = 0; i < length; ++i) {
    out += kAlphabet[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(sizeof(kAlphabet)) - 2))];
  }
  return out;
}

TEST_P(CsvRoundTripProperty, ArbitraryFieldsRoundTrip) {
  Random rng(GetParam());
  std::vector<std::vector<std::string>> original;
  const int rows = static_cast<int>(rng.UniformInt(1, 8));
  const int cols = static_cast<int>(rng.UniformInt(1, 5));
  for (int r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < cols; ++c) row.push_back(RandomField(rng));
    original.push_back(std::move(row));
  }
  // A lone trailing empty single-field row is indistinguishable from a
  // trailing newline by design; avoid that corner in the generator.
  if (original.back().size() == 1 && original.back()[0].empty()) {
    original.back()[0] = "x";
  }

  CsvWriter writer;
  for (const auto& row : original) writer.AppendRow(row);
  auto parsed = ParseCsv(writer.text());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << " seed " << GetParam();
  EXPECT_EQ(*parsed, original) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CsvRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 31));

class CsvParserRobustness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvParserRobustness, ArbitraryBytesNeverCrash) {
  Random rng(GetParam() + 7000);
  const int length = static_cast<int>(rng.UniformInt(0, 200));
  std::string junk;
  for (int i = 0; i < length; ++i) {
    junk += static_cast<char>(rng.UniformInt(1, 255));
  }
  // Must return either rows or an InvalidArgument — never crash or hang.
  auto result = ParseCsv(junk);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CsvParserRobustness,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace maroon
