#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace maroon {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, EmitsAtOrAboveThreshold) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  MAROON_LOG(Warning) << "warn " << 42;
  MAROON_LOG(Error) << "boom";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("warn 42"), std::string::npos);
  EXPECT_NE(out.find("boom"), std::string::npos);
  EXPECT_NE(out.find("[W "), std::string::npos);
  EXPECT_NE(out.find("[E "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, SuppressesBelowThreshold) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MAROON_LOG(Debug) << "hidden-debug";
  MAROON_LOG(Info) << "hidden-info";
  MAROON_LOG(Warning) << "hidden-warning";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST(LoggingTest, LinesCarryIso8601UtcTimestamp) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  MAROON_LOG(Info) << "stamped";
  const std::string out = ::testing::internal::GetCapturedStderr();
  // "[I 2026-08-06T12:00:00Z logging_test.cc:NN] stamped"
  ASSERT_NE(out.find("[I "), std::string::npos);
  const size_t stamp = out.find("[I ") + 3;
  ASSERT_GE(out.size(), stamp + 20);
  EXPECT_EQ(out[stamp + 4], '-');
  EXPECT_EQ(out[stamp + 7], '-');
  EXPECT_EQ(out[stamp + 10], 'T');
  EXPECT_EQ(out[stamp + 13], ':');
  EXPECT_EQ(out[stamp + 16], ':');
  EXPECT_EQ(out[stamp + 19], 'Z');
  EXPECT_NE(out.find("Z logging_test.cc:"), std::string::npos);
}

TEST(LoggingTest, LogEveryNEmitsFirstAndEveryNth) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i) {
    MAROON_LOG_EVERY_N(Info, 4) << "tick " << i << ";";
  }
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("tick 0;"), std::string::npos);
  EXPECT_NE(out.find("tick 4;"), std::string::npos);
  EXPECT_NE(out.find("tick 8;"), std::string::npos);
  EXPECT_EQ(out.find("tick 1;"), std::string::npos);
  EXPECT_EQ(out.find("tick 3;"), std::string::npos);
  EXPECT_EQ(out.find("tick 9;"), std::string::npos);
}

TEST(LoggingTest, LogEveryNSitesCountIndependently) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 3; ++i) {
    MAROON_LOG_EVERY_N(Info, 100) << "site-a " << i << ";";
    MAROON_LOG_EVERY_N(Info, 100) << "site-b " << i << ";";
  }
  const std::string out = ::testing::internal::GetCapturedStderr();
  // Each site emits exactly its own first occurrence.
  EXPECT_NE(out.find("site-a 0;"), std::string::npos);
  EXPECT_NE(out.find("site-b 0;"), std::string::npos);
  EXPECT_EQ(out.find("site-a 1;"), std::string::npos);
  EXPECT_EQ(out.find("site-b 1;"), std::string::npos);
}

TEST(LoggingTest, ConcurrentWritersDoNotInterleaveWithinLines) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  constexpr int kThreads = 8;
  constexpr int kLines = 25;
  std::vector<std::thread> threads;  // maroon-lint: allow(R008)
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        MAROON_LOG(Info) << "thread=" << t << " line=" << i << " end";
      }
    });
  }
  for (std::thread& t : threads) t.join();  // maroon-lint: allow(R008)
  const std::string out = ::testing::internal::GetCapturedStderr();
  // Every captured line is one complete statement: starts with the severity
  // prefix and carries the "end" marker exactly once.
  std::istringstream lines(out);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.rfind("[I ", 0), 0u) << "mangled line: " << line;
    EXPECT_NE(line.find(" end"), std::string::npos)
        << "mangled line: " << line;
    EXPECT_EQ(line.find("end"), line.rfind("end")) << "mangled line: " << line;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST(LoggingTest, StreamsArbitraryTypes) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  MAROON_LOG(Info) << "pi=" << 3.25 << " flag=" << true << " char=" << 'x';
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("pi=3.25"), std::string::npos);
  EXPECT_NE(out.find("flag=1"), std::string::npos);
  EXPECT_NE(out.find("char=x"), std::string::npos);
}

}  // namespace
}  // namespace maroon
