#include "common/logging.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, EmitsAtOrAboveThreshold) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  MAROON_LOG(Warning) << "warn " << 42;
  MAROON_LOG(Error) << "boom";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("warn 42"), std::string::npos);
  EXPECT_NE(out.find("boom"), std::string::npos);
  EXPECT_NE(out.find("[W "), std::string::npos);
  EXPECT_NE(out.find("[E "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, SuppressesBelowThreshold) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MAROON_LOG(Debug) << "hidden-debug";
  MAROON_LOG(Info) << "hidden-info";
  MAROON_LOG(Warning) << "hidden-warning";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST(LoggingTest, StreamsArbitraryTypes) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  MAROON_LOG(Info) << "pi=" << 3.25 << " flag=" << true << " char=" << 'x';
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("pi=3.25"), std::string::npos);
  EXPECT_NE(out.find("flag=1"), std::string::npos);
  EXPECT_NE(out.find("char=x"), std::string::npos);
}

}  // namespace
}  // namespace maroon
