#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"

namespace maroon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad triple").ToString(),
            "InvalidArgument: bad triple");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::IOError("disk full");
  EXPECT_EQ(os.str(), "IOError: disk full");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
}

Status FailsWhenNegative(int x) {
  MAROON_RETURN_IF_ERROR(
      x < 0 ? Status::InvalidArgument("negative") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailsWhenNegative(3).ok());
  EXPECT_EQ(FailsWhenNegative(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Doubled(Result<int> in) {
  MAROON_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Doubled(Result<int>(21));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubled(Result<int>(Status::Internal("boom")));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace maroon
