#include "common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace maroon {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ArrowAccessesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultDeathTest, ValueOnErrorAbortsWithStatus) {
  Result<int> r(Status::NotFound("the missing thing"));
  // Release builds must abort loudly too — never UB on an empty optional.
  EXPECT_DEATH(
      { (void)r.value(); },
      "check failed: ok\\(\\).*Result value accessed while holding error.*"
      "the missing thing");
}

TEST(ResultDeathTest, DereferenceOnErrorAborts) {
  Result<std::string> r(Status::Internal("broken"));
  EXPECT_DEATH({ (void)r->size(); }, "Result value accessed while holding");
}

TEST(ResultDeathTest, ErrorConstructorRejectsOkStatus) {
  // Wrapping an OK status in an error-shaped Result means the caller lost an
  // error; this must abort in every build mode, not silently repair.
  EXPECT_DEATH(
      {
        Result<int> r(Status::OK());
        (void)r;
      },
      "Result error constructor requires a non-OK status");
}

TEST(ResultDeathTest, DcheckAbortsInDebugAndVanishesInRelease) {
#ifdef NDEBUG
  MAROON_DCHECK(false) << "compiled out in release";
  SUCCEED();
#else
  EXPECT_DEATH(MAROON_DCHECK(false) << "dcheck boom",
               "check failed: false.*dcheck boom");
#endif
}

TEST(ResultDeathTest, CheckMacroAbortsWithCondition) {
  const int x = 3;
  EXPECT_DEATH(MAROON_CHECK(x == 4) << "x was " << x,
               "check failed: x == 4.*x was 3");
}

TEST(ResultDeathTest, CheckMacroPassesSilently) {
  const int x = 3;
  MAROON_CHECK(x == 3) << "never evaluated";
  SUCCEED();
}

}  // namespace
}  // namespace maroon
