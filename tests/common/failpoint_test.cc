#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <string>

namespace maroon {
namespace {

using failpoint::Action;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::ClearAll(); }
  void TearDown() override { failpoint::ClearAll(); }
};

TEST_F(FailpointTest, UnarmedPointReturnsNone) {
  EXPECT_EQ(failpoint::Hit("no.such.point"), Action::kNone);
}

TEST_F(FailpointTest, SetArmsAndClearDisarms) {
  ASSERT_TRUE(failpoint::Arm("t.point", "fail").ok());
  EXPECT_EQ(failpoint::Hit("t.point"), Action::kFail);
  failpoint::Clear("t.point");
  EXPECT_EQ(failpoint::Hit("t.point"), Action::kNone);
}

TEST_F(FailpointTest, ActionsParse) {
  ASSERT_TRUE(failpoint::Arm("t.a", "enospc").ok());
  ASSERT_TRUE(failpoint::Arm("t.b", "short").ok());
  ASSERT_TRUE(failpoint::Arm("t.c", "torn").ok());
  ASSERT_TRUE(failpoint::Arm("t.d", "kill").ok());
  EXPECT_EQ(failpoint::Hit("t.a"), Action::kEnospc);
  EXPECT_EQ(failpoint::Hit("t.b"), Action::kShortWrite);
  EXPECT_EQ(failpoint::Hit("t.c"), Action::kTornWrite);
  EXPECT_EQ(failpoint::Hit("t.d"), Action::kKill);
}

TEST_F(FailpointTest, OffSpecRemovesThePoint) {
  ASSERT_TRUE(failpoint::Arm("t.point", "fail").ok());
  ASSERT_TRUE(failpoint::Arm("t.point", "off").ok());
  EXPECT_EQ(failpoint::Hit("t.point"), Action::kNone);
}

TEST_F(FailpointTest, BadSpecsAreRejected) {
  EXPECT_FALSE(failpoint::Arm("t.point", "explode").ok());
  EXPECT_FALSE(failpoint::Arm("t.point", "fail@x").ok());
  EXPECT_FALSE(failpoint::Arm("t.point", "fail@1:y").ok());
  EXPECT_FALSE(failpoint::Arm("t.point", "fail@").ok());
  // A rejected spec must not arm the point.
  EXPECT_EQ(failpoint::Hit("t.point"), Action::kNone);
}

TEST_F(FailpointTest, SkipAndCountWindowTheFiring) {
  // Skip 2 hits, fire twice, then stay quiet.
  ASSERT_TRUE(failpoint::Arm("t.window", "fail@2:2").ok());
  EXPECT_EQ(failpoint::Hit("t.window"), Action::kNone);
  EXPECT_EQ(failpoint::Hit("t.window"), Action::kNone);
  EXPECT_EQ(failpoint::Hit("t.window"), Action::kFail);
  EXPECT_EQ(failpoint::Hit("t.window"), Action::kFail);
  EXPECT_EQ(failpoint::Hit("t.window"), Action::kNone);
  EXPECT_EQ(failpoint::Hit("t.window"), Action::kNone);
}

TEST_F(FailpointTest, DefaultCountIsOne) {
  ASSERT_TRUE(failpoint::Arm("t.once", "fail").ok());
  EXPECT_EQ(failpoint::Hit("t.once"), Action::kFail);
  EXPECT_EQ(failpoint::Hit("t.once"), Action::kNone);
}

TEST_F(FailpointTest, CountZeroFiresForever) {
  ASSERT_TRUE(failpoint::Arm("t.forever", "fail@1:0").ok());
  EXPECT_EQ(failpoint::Hit("t.forever"), Action::kNone);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(failpoint::Hit("t.forever"), Action::kFail);
  }
}

TEST_F(FailpointTest, SettingAgainResetsTheHitCounter) {
  ASSERT_TRUE(failpoint::Arm("t.reset", "fail@1").ok());
  EXPECT_EQ(failpoint::Hit("t.reset"), Action::kNone);
  EXPECT_EQ(failpoint::Hit("t.reset"), Action::kFail);
  ASSERT_TRUE(failpoint::Arm("t.reset", "fail@1").ok());
  EXPECT_EQ(failpoint::Hit("t.reset"), Action::kNone);
  EXPECT_EQ(failpoint::Hit("t.reset"), Action::kFail);
}

TEST_F(FailpointTest, ConfigureParsesLists) {
  ASSERT_TRUE(failpoint::Configure("t.one=fail, t.two=enospc@1").ok());
  EXPECT_EQ(failpoint::Hit("t.one"), Action::kFail);
  EXPECT_EQ(failpoint::Hit("t.two"), Action::kNone);
  EXPECT_EQ(failpoint::Hit("t.two"), Action::kEnospc);
}

TEST_F(FailpointTest, ConfigureRejectsEntriesWithoutEquals) {
  EXPECT_FALSE(failpoint::Configure("t.one").ok());
}

TEST_F(FailpointTest, CrashPointMacroIgnoresNonKillActions) {
  ASSERT_TRUE(failpoint::Arm("t.crash", "fail@0:0").ok());
  // Must not die and must not early-return anything: just pass through.
  MAROON_CRASH_POINT("t.crash");
  SUCCEED();
}

}  // namespace
}  // namespace maroon
