#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace maroon {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 20 && !any_diff; ++i) {
    any_diff = a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformIntStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliApproximatesProbability) {
  Random rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomTest, GeometricMeanMatches) {
  Random rng(17);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.Geometric(0.25));
  // Mean of Geometric(p) (failures before success) is (1-p)/p = 3.
  EXPECT_NEAR(total / n, 3.0, 0.15);
  EXPECT_EQ(rng.Geometric(1.0), 0);
}

TEST(RandomTest, PoissonMeanMatches) {
  Random rng(19);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.Poisson(2.5));
  EXPECT_NEAR(total / n, 2.5, 0.1);
}

TEST(RandomTest, CategoricalRespectsWeights) {
  Random rng(23);
  std::map<size_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical({1.0, 3.0, 6.0})];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RandomTest, CategoricalSkipsZeroWeights) {
  Random rng(29);
  for (int i = 0; i < 200; ++i) {
    const size_t idx = rng.Categorical({0.0, 1.0, 0.0});
    EXPECT_EQ(idx, 1u);
  }
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(31);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RandomTest, ForkGivesIndependentStream) {
  Random parent(37);
  Random child = parent.Fork();
  // The child continues deterministically regardless of the parent's use.
  Random parent2(37);
  Random child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child.UniformInt(0, 1000), child2.UniformInt(0, 1000));
  }
}

}  // namespace
}  // namespace maroon
