#include "common/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/crc32c.h"
#include "common/failpoint.h"

namespace maroon {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::ClearAll();
    dir_ = ::testing::TempDir() + "/maroon_wal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/test.wal";
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::filesystem::remove_all(dir_);
  }

  uint64_t FileSize() const { return std::filesystem::file_size(path_); }

  void AppendRawBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << bytes;
  }

  std::string dir_;
  std::string path_;
};

TEST(Crc32cTest, MatchesKnownVector) {
  // The canonical CRC-32C check value for "123456789".
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, ExtendComposes) {
  EXPECT_EQ(Crc32cExtend(Crc32c("1234"), "56789"), Crc32c("123456789"));
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  const uint32_t crc = Crc32c("payload");
  EXPECT_NE(Crc32cMask(crc), crc);
  EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
}

TEST_F(WalTest, RoundTripsFrames) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->Append(1, "alpha").ok());
  ASSERT_TRUE(writer->Append(2, "").ok());  // empty payloads are legal
  ASSERT_TRUE(writer->Append(7, "gamma").ok());  // gaps are legal
  ASSERT_TRUE(writer->Close().ok());

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->frames.size(), 3u);
  EXPECT_EQ(read->frames[0].seq, 1u);
  EXPECT_EQ(read->frames[0].payload, "alpha");
  EXPECT_EQ(read->frames[1].seq, 2u);
  EXPECT_EQ(read->frames[1].payload, "");
  EXPECT_EQ(read->frames[2].seq, 7u);
  EXPECT_EQ(read->torn_bytes, 0u);
  EXPECT_TRUE(read->truncation_reason.empty());
}

TEST_F(WalTest, BinaryPayloadSurvives) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, payload).ok());
  ASSERT_TRUE(writer->Close().ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->frames.size(), 1u);
  EXPECT_EQ(read->frames[0].payload, payload);
}

TEST_F(WalTest, EmptyLogReadsClean) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->frames.empty());
  EXPECT_EQ(read->torn_bytes, 0u);
}

TEST_F(WalTest, SequenceMustAscend) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(5, "a").ok());
  EXPECT_FALSE(writer->Append(5, "b").ok());
  EXPECT_FALSE(writer->Append(4, "c").ok());
  EXPECT_TRUE(writer->Append(6, "d").ok());
}

TEST_F(WalTest, TornTailIsDetectedAndNotReplayed) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, "first").ok());
  ASSERT_TRUE(writer->Append(2, "second").ok());
  ASSERT_TRUE(writer->Close().ok());
  const uint64_t valid = FileSize();

  // A crash mid-append leaves a partial frame header.
  AppendRawBytes(std::string("\x40\x00\x00", 3));
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->frames.size(), 2u);
  EXPECT_EQ(read->valid_size, valid);
  EXPECT_EQ(read->torn_bytes, 3u);
  EXPECT_EQ(read->truncation_reason, "short frame header");
}

TEST_F(WalTest, CrcMismatchEndsTheValidPrefix) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, "first").ok());
  const uint64_t first_end = FileSize();
  ASSERT_TRUE(writer->Append(2, "second").ok());
  ASSERT_TRUE(writer->Close().ok());

  // Flip one payload byte of the second frame.
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(first_end) + 16 + 2);
  file.put('X');
  file.close();

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->frames.size(), 1u);
  EXPECT_EQ(read->frames[0].payload, "first");
  EXPECT_EQ(read->valid_size, first_end);
  EXPECT_GT(read->torn_bytes, 0u);
  EXPECT_EQ(read->truncation_reason, "payload crc mismatch");
}

TEST_F(WalTest, OpenRepairsTornTailAndResumesSequence) {
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "first").ok());
    ASSERT_TRUE(writer->Append(2, "second").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  AppendRawBytes("torn-partial-frame");

  auto reopened = WalWriter::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->last_seq(), 2u);
  EXPECT_EQ(reopened->repaired_bytes(), 18u);
  ASSERT_TRUE(reopened->Append(3, "third").ok());
  ASSERT_TRUE(reopened->Close().ok());

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->frames.size(), 3u);
  EXPECT_EQ(read->frames[2].seq, 3u);
  EXPECT_EQ(read->frames[2].payload, "third");
  EXPECT_EQ(read->torn_bytes, 0u);
}

TEST_F(WalTest, WrongMagicIsAnErrorNotATornTail) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTAWALFILE-----------------";
  out.close();
  auto read = ReadWal(path_);
  EXPECT_FALSE(read.ok());
  auto writer = WalWriter::Open(path_);
  EXPECT_FALSE(writer.ok()) << "foreign files must not be clobbered";
}

TEST_F(WalTest, MissingFileIsIOError) {
  auto read = ReadWal(dir_ + "/absent.wal");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(WalTest, InjectedShortWriteRollsBackToFrameBoundary) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, "durable").ok());
  const uint64_t durable = FileSize();

  ASSERT_TRUE(failpoint::Arm("wal.append.write", "short").ok());
  const Status failed = writer->Append(2, "lost-then-retried");
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("short write"), std::string::npos);
  EXPECT_EQ(FileSize(), durable) << "partial frame must be rolled back";

  // The retry (failpoint disarmed after one firing) must succeed and leave a
  // clean two-frame log.
  ASSERT_TRUE(writer->Append(2, "lost-then-retried").ok());
  ASSERT_TRUE(writer->Close().ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->frames.size(), 2u);
  EXPECT_EQ(read->frames[1].payload, "lost-then-retried");
  EXPECT_EQ(read->torn_bytes, 0u);
}

TEST_F(WalTest, InjectedEnospcSurfacesAsIOError) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(failpoint::Arm("wal.append.write", "enospc").ok());
  const Status failed = writer->Append(1, "x");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_NE(failed.message().find("no space left"), std::string::npos);
  // Transient: the next attempt goes through.
  EXPECT_TRUE(writer->Append(1, "x").ok());
}

TEST_F(WalTest, InjectedFsyncFailureIsTransient) {
  WalWriterOptions options;
  options.sync_every = 1;
  auto writer = WalWriter::Open(path_, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(failpoint::Arm("wal.append.sync", "fail").ok());
  const Status failed = writer->Append(1, "x");
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("fsync"), std::string::npos);
  // The frame itself landed; a later Sync drains it.
  EXPECT_TRUE(writer->Sync().ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->frames.size(), 1u);
}

TEST_F(WalTest, SyncCadenceIsHonored) {
  WalWriterOptions options;
  options.sync_every = 3;
  auto writer = WalWriter::Open(path_, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t seq = 1; seq <= 7; ++seq) {
    ASSERT_TRUE(writer->Append(seq, "payload").ok());
  }
  EXPECT_EQ(writer->syncs(), 2u);  // after frames 3 and 6
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(writer->syncs(), 3u);  // Close always syncs
}

TEST_F(WalTest, WalFailpointsAreRegisteredForTheHarness) {
  const auto points = failpoint::RegisteredPoints();
  auto has = [&](const std::string& name) {
    for (const auto& [point, what] : points) {
      if (point == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("wal.append.write"));
  EXPECT_TRUE(has("wal.append.sync"));
}

}  // namespace
}  // namespace maroon
