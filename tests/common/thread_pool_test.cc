#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <vector>

namespace maroon {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.ParallelFor(kCount, 4, [&](int /*strand*/, size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WidthOneRunsSeriallyInAscendingOrder) {
  ThreadPool pool(4);
  std::vector<size_t> order;
  pool.ParallelFor(100, 1, [&](int strand, size_t i) {
    EXPECT_EQ(strand, 0);
    order.push_back(i);  // no synchronization needed: serial by contract
  });
  std::vector<size_t> expected(100);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, StrandIdsStayWithinWidth) {
  ThreadPool pool(8);
  std::atomic<int> max_strand{0};
  pool.ParallelFor(500, 3, [&](int strand, size_t /*i*/) {
    EXPECT_GE(strand, 0);
    int seen = max_strand.load(std::memory_order_relaxed);
    while (strand > seen &&
           !max_strand.compare_exchange_weak(seen, strand)) {
    }
  });
  EXPECT_LT(max_strand.load(), 3);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 2, [&](int, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedSectionsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, 4, [&](int /*strand*/, size_t /*i*/) {
    // A nested section on any strand must run inline (serially) rather
    // than waiting on the already-busy pool.
    pool.ParallelFor(10, 4, [&](int inner_strand, size_t /*j*/) {
      EXPECT_EQ(inner_strand, 0);
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPoolTest, ParallelMapFillsResultsByIndex) {
  ThreadPool pool(4);
  const std::vector<int> squares =
      pool.ParallelMap<int>(64, 4, [](size_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(squares.size(), 64u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, SequentialBatchesReuseTheSamePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, 4, [&](int /*strand*/, size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(ThreadPoolTest, ResolveThreadCountPrefersExplicitRequest) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(ThreadPool::kMaxThreads + 50),
            ThreadPool::kMaxThreads);
}

TEST(ThreadPoolTest, SetDefaultThreadCountGovernsUnspecifiedWidth) {
  ThreadPool::SetDefaultThreadCount(5);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0), 5);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-1), 5);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(2), 2);
  ThreadPool::SetDefaultThreadCount(1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0), 1);
}

TEST(ThreadPoolTest, SharedReturnsOneInstancePerWidth) {
  ThreadPool* a = ThreadPool::Shared(3);
  ThreadPool* b = ThreadPool::Shared(3);
  ThreadPool* c = ThreadPool::Shared(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ThreadPoolTest, OnWorkerThreadIsTrueInsideTasksAndFalseOutside) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  // Every task — on the caller strand or a helper — counts as pool work, so
  // nested sections always take the inline path.
  pool.ParallelFor(64, 2, [&](int /*strand*/, size_t /*i*/) {
    if (ThreadPool::OnWorkerThread()) {
      inside.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  EXPECT_EQ(inside.load(), 64);
}

}  // namespace
}  // namespace maroon
