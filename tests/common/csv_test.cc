#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace maroon {
namespace {

using Rows = std::vector<std::vector<std::string>>;

TEST(CsvWriterTest, PlainFields) {
  CsvWriter w;
  w.AppendRow({"a", "b", "c"});
  EXPECT_EQ(w.text(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesSpecialFields) {
  CsvWriter w;
  w.AppendRow({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(w.text(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvParseTest, SimpleRows) {
  auto rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(CsvParseTest, NoTrailingNewline) {
  auto rows = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(CsvParseTest, QuotedFieldsWithCommasAndQuotes) {
  auto rows = ParseCsv("\"x,y\",\"a\"\"b\"\nplain,2\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"x,y", "a\"b"}, {"plain", "2"}}));
}

TEST(CsvParseTest, QuotedNewline) {
  auto rows = ParseCsv("\"line1\nline2\",b\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"line1\nline2", "b"}}));
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(CsvParseTest, EmptyFields) {
  auto rows = ParseCsv(",\na,\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"", ""}, {"a", ""}}));
}

TEST(CsvParseTest, EmptyInputHasNoRows) {
  auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvParseTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("\"open,b\n").ok());
}

TEST(CsvParseTest, QuoteInsideUnquotedFieldFails) {
  EXPECT_FALSE(ParseCsv("ab\"cd,e\n").ok());
}

TEST(CsvRoundTripTest, WriterOutputParsesBack) {
  CsvWriter w;
  const Rows original = {
      {"id", "values", "note"},
      {"1", "a,b,c", "quote \" inside"},
      {"2", "", "multi\nline"},
  };
  for (const auto& row : original) w.AppendRow(row);
  auto parsed = ParseCsv(w.text());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/maroon_csv_test.csv";
  CsvWriter w;
  w.AppendRow({"x", "y"});
  w.AppendRow({"1", "2"});
  ASSERT_TRUE(w.WriteToFile(path).ok());
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"x", "y"}, {"1", "2"}}));
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto rows = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace maroon
