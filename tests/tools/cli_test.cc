#include <gtest/gtest.h>

#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace maroon {
namespace {

/// End-to-end smoke tests of the maroon_cli binary. Tests run with the
/// build/tests directory as working directory (gtest_discover_tests), so the
/// tool lives at ../tools/maroon_cli.
class CliTest : public ::testing::Test {
 protected:
  static constexpr char kCli[] = "../tools/maroon_cli";

  void SetUp() override {
    if (!std::filesystem::exists(kCli)) {
      GTEST_SKIP() << "maroon_cli binary not found at " << kCli;
    }
    // ctest -j runs each case in its own process concurrently; the scratch
    // directory must be unique per test case.
    dir_ = ::testing::TempDir() + "/maroon_cli_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int Run(const std::string& args, std::string* output = nullptr,
          const std::string& env = "") {
    const std::string out_path = dir_ + "/cmd.out";
    // `env` is a "VAR=value" prefix (sh applies it to the command only) —
    // the crash tests arm failpoints in the child via MAROON_FAILPOINTS.
    const std::string command = (env.empty() ? "" : env + " ") +
                                std::string(kCli) + " " + args + " > " +
                                out_path + " 2>&1";
    const int code = std::system(command.c_str());
    if (output != nullptr) {
      std::ifstream in(out_path);
      std::ostringstream ss;
      ss << in.rdbuf();
      *output = ss.str();
    }
    return code;
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::string dir_;
};

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  std::string out;
  EXPECT_NE(Run("", &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, VersionFlagPrintsVersion) {
  std::string out;
  EXPECT_EQ(Run("--version", &out), 0) << out;
  EXPECT_NE(out.find("maroon_cli "), std::string::npos) << out;
}

TEST_F(CliTest, LintToolReportsVersionAndCleanExit) {
  constexpr char kLint[] = "../tools/maroon_lint";
  if (!std::filesystem::exists(kLint)) {
    GTEST_SKIP() << "maroon_lint binary not found at " << kLint;
  }
  const std::string out_path = dir_ + "/lint.out";
  const int code =
      std::system((std::string(kLint) + " --version > " + out_path).c_str());
  EXPECT_EQ(code, 0);
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("maroon_lint "), std::string::npos) << ss.str();
}

TEST_F(CliTest, GenerateStatsEvaluatePipeline) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=25 --names=10 --seed=5",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("wrote"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/data/records.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/data/profiles.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/data/sources.csv"));

  ASSERT_EQ(Run("stats --data=" + dir_ + "/data", &out), 0) << out;
  EXPECT_NE(out.find("CareerHub"), std::string::npos);
  EXPECT_NE(out.find("freshness"), std::string::npos);

  ASSERT_EQ(Run("evaluate --data=" + dir_ +
                    "/data --method=static --eval-entities=4",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("Static:"), std::string::npos);
}

TEST_F(CliTest, TransitionsAndExport) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=25 --names=10 --seed=5",
                &out),
            0);
  ASSERT_EQ(Run("transitions --data=" + dir_ +
                    "/data --attribute=Title --from=Manager --delta=5",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("Manager ->"), std::string::npos);

  ASSERT_EQ(Run("transitions --data=" + dir_ +
                    "/data --attribute=Title --export=" + dir_ + "/tt.csv",
                &out),
            0)
      << out;
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/tt.csv"));
}

TEST_F(CliTest, ValidateInjectLenientWorkflow) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=25 --names=10 --seed=5",
                &out),
            0)
      << out;

  // A freshly generated corpus validates clean (exit 0).
  ASSERT_EQ(Run("validate --data=" + dir_ + "/data", &out), 0) << out;
  EXPECT_NE(out.find("0 issue(s)"), std::string::npos);

  // Corrupt it; the injector reports what it did.
  ASSERT_EQ(Run("inject --data=" + dir_ +
                    "/data --seed=11 --drop-cell=0.15 --unknown-source=0.1 "
                    "--shuffle-timestamp=0.1",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("FaultReport:"), std::string::npos);
  EXPECT_NE(out.find("DropCell"), std::string::npos);

  // Now validate exits non-zero and names the damage.
  EXPECT_NE(Run("validate --data=" + dir_ + "/data", &out), 0);
  EXPECT_NE(out.find("WrongColumnCount"), std::string::npos);
  EXPECT_NE(out.find("quarantined"), std::string::npos);

  // Strict loading fails outright...
  EXPECT_NE(Run("stats --data=" + dir_ + "/data", &out), 0);
  EXPECT_NE(out.find("error:"), std::string::npos);

  // ...but --lenient quarantines and completes, printing counters.
  ASSERT_EQ(Run("stats --data=" + dir_ + "/data --lenient", &out), 0) << out;
  EXPECT_NE(out.find("lenient load: quarantined"), std::string::npos);
  ASSERT_EQ(Run("evaluate --data=" + dir_ +
                    "/data --lenient --method=static --eval-entities=4",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("lenient load: quarantined"), std::string::npos);
  EXPECT_NE(out.find("Static:"), std::string::npos);
}

TEST_F(CliTest, ValidateRepairWritesCleanCopy) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=dblp --out=" + dir_ +
                    "/data --entities=20 --names=5",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("inject --data=" + dir_ +
                    "/data --seed=3 --invert-interval=0.2 "
                    "--mangle-separator=0.2",
                &out),
            0)
      << out;
  // Repair policy fixes everything fixable and writes the repaired copy.
  EXPECT_NE(Run("validate --data=" + dir_ + "/data --policy=repair --out=" +
                    dir_ + "/fixed",
                &out),
            0);  // issues were found, so exit is non-zero...
  EXPECT_NE(out.find("repair(s)"), std::string::npos);
  // ...but the repaired copy validates clean.
  EXPECT_EQ(Run("validate --data=" + dir_ + "/fixed", &out), 0) << out;
}

TEST_F(CliTest, ObservabilityFlagsWriteMetricsTraceAndReport) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=25 --names=10 --seed=5",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("link --data=" + dir_ + "/data --entity=entity_0" +
                    " --metrics-out=" + dir_ + "/metrics.json" +
                    " --trace-out=" + dir_ + "/trace.json" +
                    " --run-report=" + dir_ + "/report.json",
                &out),
            0)
      << out;

  // The snapshot must carry at least one counter from every instrumented
  // pipeline layer.
  const std::string metrics = ReadFile(dir_ + "/metrics.json");
  EXPECT_NE(metrics.find("\"maroon.validation.records_checked\""),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("\"maroon.transition.delta_observations\""),
            std::string::npos);
  EXPECT_NE(metrics.find("\"maroon.freshness.observations\""),
            std::string::npos);
  EXPECT_NE(metrics.find("\"maroon.phase1.clusters_formed\""),
            std::string::npos);
  EXPECT_NE(metrics.find("\"maroon.phase2.iterations\""), std::string::npos);
  EXPECT_NE(metrics.find("\"histograms\""), std::string::npos);

  const std::string trace = ReadFile(dir_ + "/trace.json");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"cli.link\""), std::string::npos);
  EXPECT_NE(trace.find("\"phase1.partition\""), std::string::npos);

  const std::string report = ReadFile(dir_ + "/report.json");
  EXPECT_NE(report.find("\"maroon_run_report_v1\""), std::string::npos);
  EXPECT_NE(report.find("\"command\": \"link\""), std::string::npos);
  EXPECT_NE(report.find("\"metrics\""), std::string::npos);

  // Bare --run-report prints the human-readable table instead.
  ASSERT_EQ(Run("stats --data=" + dir_ + "/data --run-report", &out), 0)
      << out;
  EXPECT_NE(out.find("== MAROON run report =="), std::string::npos);
  // The table elides zero counters; freshness training always observes
  // something on this corpus.
  EXPECT_NE(out.find("maroon.freshness.observations"), std::string::npos);
}

TEST_F(CliTest, MetricsPromOutWritesExpositionFormat) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=25 --names=10 --seed=5",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("link --data=" + dir_ + "/data --entity=entity_0" +
                    " --metrics-prom-out=" + dir_ + "/metrics.prom",
                &out),
            0)
      << out;
  const std::string prom = ReadFile(dir_ + "/metrics.prom");
  EXPECT_NE(prom.find("# TYPE maroon_phase1_clusters_formed counter"),
            std::string::npos)
      << prom;
  // The per-entity latency histogram renders the scrape ladder.
  EXPECT_NE(prom.find("# TYPE maroon_link_entity_seconds histogram"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("maroon_link_entity_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("maroon_link_entity_seconds_count"), std::string::npos);
}

TEST_F(CliTest, MetricsJsonlWritesSnapshotSeries) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=25 --names=10 --seed=5",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("link --data=" + dir_ + "/data --entity=entity_0" +
                    " --metrics-jsonl=" + dir_ +
                    "/metrics.jsonl --metrics-every-s=0.05",
                &out),
            0)
      << out;
  const std::string jsonl = ReadFile(dir_ + "/metrics.jsonl");
  // At least the final row (written on Stop) is present and well-formed.
  EXPECT_NE(jsonl.find("\"maroon_metrics_snapshot_v1\""), std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"seq\": 0"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"latency_histograms\""), std::string::npos);

  // --metrics-every-s without --metrics-jsonl is a usage error.
  EXPECT_NE(Run("stats --data=" + dir_ + "/data --metrics-every-s=1", &out),
            0);
  EXPECT_NE(out.find("--metrics-jsonl"), std::string::npos) << out;
}

/// The "key=value" line for `key` in the replay/recover state block.
std::string StateLine(const std::string& output, const std::string& key) {
  std::istringstream in(output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key + "=", 0) == 0) return line;
  }
  return "";
}

TEST_F(CliTest, ReplayRecoverRoundTrip) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=20 --names=8 --seed=9",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("replay --data=" + dir_ + "/data --wal-dir=" + dir_ +
                    "/wal --snapshot-every=50",
                &out),
            0)
      << out;
  const std::string hash = StateLine(out, "store_hash");
  ASSERT_FALSE(hash.empty()) << out;
  EXPECT_EQ(StateLine(out, "rejected"), "rejected=0") << out;
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/wal/profile.wal"));
  EXPECT_FALSE(std::filesystem::is_empty(dir_ + "/wal/snapshots"));

  // Recovery (snapshot + WAL tail) rebuilds the identical store.
  ASSERT_EQ(Run("recover --wal-dir=" + dir_ + "/wal", &out), 0) << out;
  EXPECT_EQ(StateLine(out, "store_hash"), hash) << out;

  // --state-out writes the same parseable block to a file.
  ASSERT_EQ(Run("recover --wal-dir=" + dir_ + "/wal --state-out=" + dir_ +
                    "/state.txt",
                &out),
            0)
      << out;
  EXPECT_NE(ReadFile(dir_ + "/state.txt").find(hash), std::string::npos);
}

TEST_F(CliTest, ReplayKilledMidStreamRecoversAndResumes) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=20 --names=8 --seed=9",
                &out),
            0)
      << out;
  // Reference: the uninterrupted run's final hash.
  ASSERT_EQ(Run("replay --data=" + dir_ + "/data --wal-dir=" + dir_ +
                    "/ref --snapshot-every=25",
                &out),
            0)
      << out;
  const std::string want = StateLine(out, "store_hash");
  ASSERT_FALSE(want.empty()) << out;

  // Kill the process at the crash window between WAL append and store
  // apply; the injected death uses the reserved failpoint exit code.
  const int code = Run(
      "replay --data=" + dir_ + "/data --wal-dir=" + dir_ +
          "/crash --snapshot-every=25",
      &out, "MAROON_FAILPOINTS=stream.apply.before=kill@40");
  ASSERT_NE(code, 0);
  EXPECT_NE(out.find("failpoint kill"), std::string::npos) << out;

  // Recovery replays the WAL tail; resending the whole stream then skips
  // every already-durable record and converges on the reference hash.
  ASSERT_EQ(Run("recover --wal-dir=" + dir_ + "/crash", &out), 0) << out;
  EXPECT_EQ(StateLine(out, "last_seq"), "last_seq=41") << out;
  ASSERT_EQ(Run("replay --data=" + dir_ + "/data --wal-dir=" + dir_ +
                    "/crash --snapshot-every=25",
                &out),
            0)
      << out;
  EXPECT_EQ(StateLine(out, "store_hash"), want) << out;
  EXPECT_EQ(StateLine(out, "resumed_skips"), "resumed_skips=41") << out;
}

TEST_F(CliTest, ListCrashPointsEnumeratesDurabilitySites) {
  std::string out;
  ASSERT_EQ(Run("--list-crash-points", &out), 0) << out;
  EXPECT_NE(out.find("wal.append.write"), std::string::npos) << out;
  EXPECT_NE(out.find("snapshot.rename.before"), std::string::npos);
  EXPECT_NE(out.find("stream.apply.before"), std::string::npos);
}

TEST_F(CliTest, UnwritableSinksExitNonzero) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=20 --names=8 --seed=9",
                &out),
            0)
      << out;
  const std::string bad = dir_ + "/no/such/dir/out.txt";

  // Every file sink must fail loudly: the report writer...
  EXPECT_NE(Run("evaluate --data=" + dir_ + "/data --eval-entities=2 "
                    "--report=" + bad,
                &out),
            0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  // ...the stream state sink...
  EXPECT_NE(Run("replay --data=" + dir_ + "/data --wal-dir=" + dir_ +
                    "/wal --state-out=" + bad,
                &out),
            0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  // ...and the observability sinks, even when the command itself succeeded.
  EXPECT_NE(Run("stats --data=" + dir_ + "/data --metrics-out=" + bad, &out),
            0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  EXPECT_NE(Run("stats --data=" + dir_ + "/data --metrics-prom-out=" + bad,
                &out),
            0);
  EXPECT_NE(Run("stats --data=" + dir_ + "/data --run-report=" + bad, &out),
            0);
}

TEST_F(CliTest, UnknownCommandAndBadFlags) {
  std::string out;
  EXPECT_NE(Run("frobnicate", &out), 0);
  EXPECT_NE(Run("stats --data=/nonexistent", &out), 0);
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(Run("generate --dataset=bogus --out=" + dir_ + "/x", &out), 0);
}

TEST_F(CliTest, ServeStreamsTheCorpusAndExitsOnTheDurationBudget) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=20 --names=8 --seed=7",
                &out),
            0)
      << out;
  ASSERT_EQ(Run("serve --data=" + dir_ + "/data --wal-dir=" + dir_ +
                    "/wal --port=0 --port-file=" + dir_ +
                    "/port.txt --duration-s=2",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("serving ops plane on http://127.0.0.1:"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("ingest done:"), std::string::npos) << out;
  EXPECT_NE(out.find("serve: streamed"), std::string::npos) << out;
  EXPECT_NE(out.find("scrapes="), std::string::npos) << out;
  // The ephemeral port was published for harnesses to pick up.
  const std::string port = ReadFile(dir_ + "/port.txt");
  EXPECT_FALSE(port.empty());
  int port_value = 0;
  (void)std::from_chars(port.data(), port.data() + port.size(), port_value);
  EXPECT_GT(port_value, 0);
}

TEST_F(CliTest, ServeExitsNonZeroWhenAWalFaultHaltsIngest) {
  std::string out;
  ASSERT_EQ(Run("generate --dataset=recruitment --out=" + dir_ +
                    "/data --entities=10 --names=5 --seed=7",
                &out),
            0)
      << out;
  EXPECT_NE(Run("serve --data=" + dir_ + "/data --wal-dir=" + dir_ +
                    "/wal --port=0 --duration-s=1",
                &out, "MAROON_FAILPOINTS='wal.append.write=fail@0:0'"),
            0)
      << out;
  EXPECT_NE(out.find("ingest halted:"), std::string::npos) << out;
  EXPECT_NE(out.find("halted on error"), std::string::npos) << out;
}

TEST_F(CliTest, PromlintPassesCleanAndFlagsBrokenExpositions) {
  std::string out;
  {
    std::ofstream clean(dir_ + "/clean.prom");
    clean << "# TYPE maroon_test_total counter\nmaroon_test_total 3\n";
  }
  EXPECT_EQ(Run("promlint " + dir_ + "/clean.prom", &out), 0) << out;
  EXPECT_NE(out.find("promlint: clean"), std::string::npos) << out;

  {
    std::ofstream broken(dir_ + "/broken.prom");
    broken << "9bad 1\nmaroon_ok notanumber\n";
  }
  EXPECT_NE(Run("promlint " + dir_ + "/broken.prom", &out), 0) << out;
  EXPECT_NE(out.find("problem(s)"), std::string::npos) << out;

  EXPECT_NE(Run("promlint", &out), 0);           // missing argument
  EXPECT_NE(Run("promlint /nonexistent", &out), 0);  // unreadable file
}

}  // namespace
}  // namespace maroon
