#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace maroon {
namespace {

/// End-to-end tests of the maroon_benchdiff binary: the perf-regression
/// gate run_bench.sh and CI call between two maroon_bench_runtime_v1
/// files. Tests run with build/tests as working directory, so the tool
/// lives at ../tools/maroon_benchdiff.
class BenchdiffToolTest : public ::testing::Test {
 protected:
  static constexpr char kTool[] = "../tools/maroon_benchdiff";

  void SetUp() override {
    if (!std::filesystem::exists(kTool)) {
      GTEST_SKIP() << "maroon_benchdiff binary not found at " << kTool;
    }
    dir_ = ::testing::TempDir() + "/maroon_benchdiff_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int Run(const std::string& args, std::string* output = nullptr) {
    const std::string out_path = dir_ + "/cmd.out";
    const std::string command =
        std::string(kTool) + " " + args + " > " + out_path + " 2>&1";
    const int raw = std::system(command.c_str());
    if (output != nullptr) {
      std::ifstream in(out_path);
      std::ostringstream ss;
      ss << in.rdbuf();
      *output = ss.str();
    }
    // Decode the shell's exit status so tests can assert on 0/1/2.
    return WEXITSTATUS(raw);
  }

  std::string WriteDoc(const std::string& name, double total_wall_s) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << "{\"schema\": \"maroon_bench_runtime_v1\", \"rows\": ["
        << "{\"bench\": \"fig7_runtime\", \"method\": \"MAROON\", "
        << "\"threads\": 1, \"total_wall_s\": " << total_wall_s << "}]}";
    return path;
  }

  std::string dir_;
};

TEST_F(BenchdiffToolTest, IdenticalFilesExitZero) {
  const std::string baseline = WriteDoc("baseline.json", 0.200);
  const std::string current = WriteDoc("current.json", 0.200);
  std::string out;
  EXPECT_EQ(Run("--baseline=" + baseline + " --current=" + current, &out), 0)
      << out;
  EXPECT_NE(out.find("benchdiff: OK"), std::string::npos) << out;
  EXPECT_NE(out.find("total_wall_s"), std::string::npos) << out;
}

TEST_F(BenchdiffToolTest, RegressionExitsOne) {
  const std::string baseline = WriteDoc("baseline.json", 0.200);
  const std::string current = WriteDoc("current.json", 0.300);  // +50%
  std::string out;
  EXPECT_EQ(Run("--baseline=" + baseline + " --current=" + current, &out), 1)
      << out;
  EXPECT_NE(out.find("REGRESSED"), std::string::npos) << out;
  EXPECT_NE(out.find("benchdiff: FAIL"), std::string::npos) << out;
}

TEST_F(BenchdiffToolTest, ThresholdFlagLoosensTheGate) {
  const std::string baseline = WriteDoc("baseline.json", 0.200);
  const std::string current = WriteDoc("current.json", 0.300);
  std::string out;
  EXPECT_EQ(Run("--baseline=" + baseline + " --current=" + current +
                    " --threshold-pct=100",
                &out),
            0)
      << out;
}

TEST_F(BenchdiffToolTest, JsonFlagEmitsMachineReport) {
  const std::string baseline = WriteDoc("baseline.json", 0.200);
  const std::string current = WriteDoc("current.json", 0.300);
  std::string out;
  EXPECT_EQ(Run("--baseline=" + baseline + " --current=" + current +
                    " --json",
                &out),
            1)
      << out;
  EXPECT_NE(out.find("\"maroon_benchdiff_v1\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"regressed\": true"), std::string::npos) << out;
}

TEST_F(BenchdiffToolTest, MissingFileExitsTwo) {
  const std::string current = WriteDoc("current.json", 0.200);
  std::string out;
  EXPECT_EQ(Run("--baseline=" + dir_ + "/absent.json --current=" + current,
                &out),
            2)
      << out;
  EXPECT_NE(out.find("error"), std::string::npos) << out;
}

TEST_F(BenchdiffToolTest, UsageErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(Run("", &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  EXPECT_EQ(Run("--baseline=a.json", &out), 2);
  EXPECT_EQ(Run("--baseline=a.json --current=b.json --bogus-flag=1", &out),
            2);
}

}  // namespace
}  // namespace maroon
