#include "eval/sweep.h"

#include <gtest/gtest.h>

#include "datagen/recruitment_generator.h"

namespace maroon {
namespace {

class SweepTest : public ::testing::Test {
 protected:
  static Dataset SmallDataset() {
    RecruitmentOptions options;
    options.seed = 3;
    options.num_entities = 40;
    options.num_names = 16;
    return GenerateRecruitmentDataset(options);
  }
  static ExperimentOptions Base() {
    ExperimentOptions options;
    options.max_eval_entities = 8;
    return options;
  }
};

TEST_F(SweepTest, ThetaSweepTradesPrecisionForRecall) {
  const Dataset dataset = SmallDataset();
  const SweepCurve curve =
      SweepTheta(dataset, Base(), {0.005, 0.1, 0.5});
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_EQ(curve.parameter_name, "theta");
  // Monotone directions across the extremes.
  EXPECT_GE(curve.points.back().result.precision,
            curve.points.front().result.precision - 1e-9);
  EXPECT_LE(curve.points.back().result.recall,
            curve.points.front().result.recall + 1e-9);
}

TEST_F(SweepTest, CsvRendering) {
  const Dataset dataset = SmallDataset();
  const SweepCurve curve = SweepTheta(dataset, Base(), {0.05});
  const std::string csv = curve.ToCsv();
  EXPECT_NE(csv.find("theta,precision,recall,f1"), std::string::npos);
  // Header + one data row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST_F(SweepTest, BestByF1) {
  const Dataset dataset = SmallDataset();
  const SweepCurve curve = SweepTheta(dataset, Base(), {0.01, 0.1});
  const SweepPoint* best = curve.BestByF1();
  ASSERT_NE(best, nullptr);
  for (const SweepPoint& p : curve.points) {
    EXPECT_GE(best->result.f1, p.result.f1);
  }
  EXPECT_EQ(SweepCurve().BestByF1(), nullptr);
}

TEST_F(SweepTest, CustomParameterSweep) {
  const Dataset dataset = SmallDataset();
  const SweepCurve curve = RunParameterSweep(
      dataset, Base(), Method::kAfdsMuta, "link_threshold", {0.3, 0.6},
      [](ExperimentOptions& options, double value) {
        options.afds.link_threshold = value;
      });
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_EQ(curve.method, Method::kAfdsMuta);
  // Raising the AFDS link threshold cannot raise recall.
  EXPECT_LE(curve.points[1].result.recall,
            curve.points[0].result.recall + 1e-9);
}

}  // namespace
}  // namespace maroon
