#include "eval/benchdiff.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/logging.h"
#include "obs/json.h"

namespace maroon {
namespace {

obs::JsonValue Parse(const std::string& text) {
  auto value = obs::ParseJson(text);
  MAROON_CHECK(value.ok()) << value.status();
  return *std::move(value);
}

/// A minimal two-row baseline in the run_bench.sh document shape.
std::string Doc(double phase1_s, double total_wall_s, double overhead_pct) {
  std::string out = R"({
    "schema": "maroon_bench_runtime_v1",
    "rows": [
      {"bench": "fig7_runtime", "method": "MAROON", "threads": 1,
       "entities": 100, "phase1_s": )";
  out += std::to_string(phase1_s);
  out += R"(, "total_wall_s": )";
  out += std::to_string(total_wall_s);
  out += R"(, "result_hash": 12345},
      {"bench": "fig7_runtime", "method": "AFDS", "threads": 1,
       "entities": 100, "total_wall_s": 0.050}
    ],
    "overhead": {"overhead_pct": )";
  out += std::to_string(overhead_pct);
  out += R"(}
  })";
  return out;
}

TEST(BenchDiffTest, IdenticalDocumentsPass) {
  const obs::JsonValue doc = Parse(Doc(0.100, 0.200, 1.5));
  const BenchDiffReport report = DiffBenchDocuments(doc, doc);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_EQ(report.regressions, 0);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_TRUE(report.additions.empty());
  // Every timing and numeric metric shows up as a compared entry.
  EXPECT_FALSE(report.entries.empty());
  for (const BenchDiffEntry& e : report.entries) {
    EXPECT_DOUBLE_EQ(e.delta_pct, 0.0) << e.row_key << " " << e.metric;
    EXPECT_FALSE(e.regressed);
  }
}

TEST(BenchDiffTest, RegressionPastThresholdFails) {
  const obs::JsonValue baseline = Parse(Doc(0.100, 0.200, 1.5));
  const obs::JsonValue current = Parse(Doc(0.140, 0.200, 1.5));  // +40%
  const BenchDiffReport report = DiffBenchDocuments(baseline, current);
  EXPECT_FALSE(report.ok()) << report.ToText();
  EXPECT_EQ(report.regressions, 1);
  bool found = false;
  for (const BenchDiffEntry& e : report.entries) {
    if (e.metric != "phase1_s") continue;
    if (e.row_key.find("MAROON") == std::string::npos) continue;
    found = true;
    EXPECT_TRUE(e.gated);
    EXPECT_TRUE(e.regressed);
    EXPECT_NEAR(e.delta_pct, 40.0, 1e-9);
  }
  EXPECT_TRUE(found) << report.ToText();
  // The report text names the verdict and the offending metric.
  EXPECT_NE(report.ToText().find("phase1_s"), std::string::npos);
}

TEST(BenchDiffTest, ThresholdIsConfigurable) {
  const obs::JsonValue baseline = Parse(Doc(0.100, 0.200, 1.5));
  const obs::JsonValue current = Parse(Doc(0.140, 0.200, 1.5));
  BenchDiffOptions options;
  options.threshold_pct = 50.0;  // +40% now passes
  EXPECT_TRUE(DiffBenchDocuments(baseline, current, options).ok());
}

TEST(BenchDiffTest, NoiseFloorSuppressesTinyTimings) {
  // 1ms -> 4ms is +300%, but both sides sit under the 5ms noise floor.
  const obs::JsonValue baseline = Parse(Doc(0.001, 0.200, 1.5));
  const obs::JsonValue current = Parse(Doc(0.004, 0.200, 1.5));
  const BenchDiffReport report = DiffBenchDocuments(baseline, current);
  EXPECT_TRUE(report.ok()) << report.ToText();
  for (const BenchDiffEntry& e : report.entries) {
    if (e.metric == "phase1_s") {
      EXPECT_FALSE(e.gated);
    }
  }
  // A floor of zero re-arms the gate.
  BenchDiffOptions options;
  options.min_seconds = 0.0;
  EXPECT_FALSE(DiffBenchDocuments(baseline, current, options).ok());
}

TEST(BenchDiffTest, NonTimingMetricsAreNeverGated) {
  // overhead_pct triples; it is reported but not a regression.
  const obs::JsonValue baseline = Parse(Doc(0.100, 0.200, 1.0));
  const obs::JsonValue current = Parse(Doc(0.100, 0.200, 3.0));
  const BenchDiffReport report = DiffBenchDocuments(baseline, current);
  EXPECT_TRUE(report.ok()) << report.ToText();
  bool found = false;
  for (const BenchDiffEntry& e : report.entries) {
    if (e.metric != "overhead_pct") continue;
    found = true;
    EXPECT_FALSE(e.gated);
    EXPECT_NEAR(e.delta_pct, 200.0, 1e-9);
  }
  EXPECT_TRUE(found) << report.ToText();
}

TEST(BenchDiffTest, ResultHashChangesAreIgnored) {
  const obs::JsonValue baseline = Parse(Doc(0.100, 0.200, 1.5));
  std::string changed = Doc(0.100, 0.200, 1.5);
  const size_t pos = changed.find("12345");
  ASSERT_NE(pos, std::string::npos);
  changed.replace(pos, 5, "99999");
  const BenchDiffReport report =
      DiffBenchDocuments(baseline, Parse(changed));
  EXPECT_TRUE(report.ok()) << report.ToText();
  for (const BenchDiffEntry& e : report.entries) {
    EXPECT_NE(e.metric, "result_hash");
  }
}

TEST(BenchDiffTest, MissingRowIsAnError) {
  const obs::JsonValue baseline = Parse(Doc(0.100, 0.200, 1.5));
  // Current document keeps only the MAROON row.
  const obs::JsonValue current = Parse(R"({
    "schema": "maroon_bench_runtime_v1",
    "rows": [
      {"bench": "fig7_runtime", "method": "MAROON", "threads": 1,
       "entities": 100, "phase1_s": 0.100, "total_wall_s": 0.200,
       "result_hash": 12345}
    ],
    "overhead": {"overhead_pct": 1.5}
  })");
  const BenchDiffReport report = DiffBenchDocuments(baseline, current);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors[0].find("AFDS"), std::string::npos)
      << report.ToText();
}

TEST(BenchDiffTest, MissingMetricIsAnError) {
  const obs::JsonValue baseline = Parse(Doc(0.100, 0.200, 1.5));
  std::string shrunk = Doc(0.100, 0.200, 1.5);
  const size_t pos = shrunk.find("\"phase1_s\"");
  ASSERT_NE(pos, std::string::npos);
  // Rename the metric away so the baseline's phase1_s has no counterpart.
  shrunk.replace(pos, 10, "\"phase9_s\"");
  const BenchDiffReport report =
      DiffBenchDocuments(baseline, Parse(shrunk));
  EXPECT_FALSE(report.ok());
  bool missing_reported = false;
  for (const std::string& e : report.errors) {
    if (e.find("phase1_s") != std::string::npos) missing_reported = true;
  }
  EXPECT_TRUE(missing_reported) << report.ToText();
  // The renamed metric on the current side is an addition, not an error.
  bool addition_reported = false;
  for (const std::string& a : report.additions) {
    if (a.find("phase9_s") != std::string::npos) addition_reported = true;
  }
  EXPECT_TRUE(addition_reported) << report.ToText();
}

TEST(BenchDiffTest, WrongSchemaIsAnError) {
  const obs::JsonValue good = Parse(Doc(0.100, 0.200, 1.5));
  const obs::JsonValue bad =
      Parse(R"({"schema": "something_else", "rows": []})");
  EXPECT_FALSE(DiffBenchDocuments(good, bad).ok());
  EXPECT_FALSE(DiffBenchDocuments(bad, good).ok());
}

TEST(BenchDiffTest, MillisecondMetricsUseConvertedNoiseFloor) {
  // 40ms -> 80ms (+100%) in an _ms metric: 0.04s is over the 5ms floor, so
  // it gates; the same values under a 100ms floor do not.
  const std::string base = R"({
    "schema": "maroon_bench_runtime_v1",
    "rows": [{"bench": "b", "lat_ms": 40.0}]
  })";
  const std::string cur = R"({
    "schema": "maroon_bench_runtime_v1",
    "rows": [{"bench": "b", "lat_ms": 80.0}]
  })";
  EXPECT_FALSE(DiffBenchDocuments(Parse(base), Parse(cur)).ok());
  BenchDiffOptions options;
  options.min_seconds = 0.1;
  EXPECT_TRUE(DiffBenchDocuments(Parse(base), Parse(cur), options).ok());
}

TEST(BenchDiffTest, ToJsonEmitsSchemaAndVerdict) {
  const obs::JsonValue baseline = Parse(Doc(0.100, 0.200, 1.5));
  const obs::JsonValue current = Parse(Doc(0.140, 0.200, 1.5));
  const BenchDiffReport report = DiffBenchDocuments(baseline, current);
  auto parsed = obs::ParseJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* schema = parsed->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value, "maroon_benchdiff_v1");
  const obs::JsonValue* regressions = parsed->Find("regressions");
  ASSERT_NE(regressions, nullptr);
  EXPECT_DOUBLE_EQ(regressions->number_value, 1.0);
  const obs::JsonValue* ok = parsed->Find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->bool_value);
  const obs::JsonValue* entries = parsed->Find("entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_TRUE(entries->is_array());
  EXPECT_FALSE(entries->array.empty());
}

TEST(BenchDiffTest, DiffBenchFilesRoundTrips) {
  const std::string dir = ::testing::TempDir();
  const std::string baseline_path = dir + "/benchdiff_baseline.json";
  const std::string current_path = dir + "/benchdiff_current.json";
  {
    std::ofstream(baseline_path) << Doc(0.100, 0.200, 1.5);
    std::ofstream(current_path) << Doc(0.100, 0.210, 1.5);  // +5%: passes
  }
  auto report = DiffBenchFiles(baseline_path, current_path);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->ToText();

  auto missing = DiffBenchFiles(dir + "/does_not_exist.json", current_path);
  EXPECT_FALSE(missing.ok());

  const std::string garbage_path = dir + "/benchdiff_garbage.json";
  { std::ofstream(garbage_path) << "not json at all"; }
  auto garbage = DiffBenchFiles(baseline_path, garbage_path);
  EXPECT_FALSE(garbage.ok());
}

}  // namespace
}  // namespace maroon
