#include "eval/bootstrap.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace maroon {
namespace {

TEST(BootstrapTest, DegenerateInputs) {
  const BootstrapInterval empty = BootstrapMeanInterval({});
  EXPECT_EQ(empty.samples, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.lower, empty.upper);

  const BootstrapInterval single = BootstrapMeanInterval({0.7});
  EXPECT_DOUBLE_EQ(single.mean, 0.7);
  EXPECT_DOUBLE_EQ(single.lower, 0.7);
  EXPECT_DOUBLE_EQ(single.upper, 0.7);
}

TEST(BootstrapTest, IntervalBracketsMean) {
  std::vector<double> values = {0.2, 0.4, 0.6, 0.8, 0.5, 0.3, 0.7};
  const BootstrapInterval ci = BootstrapMeanInterval(values);
  EXPECT_LE(ci.lower, ci.mean);
  EXPECT_GE(ci.upper, ci.mean);
  EXPECT_GT(ci.HalfWidth(), 0.0);
  EXPECT_EQ(ci.samples, values.size());
}

TEST(BootstrapTest, DeterministicForSeed) {
  std::vector<double> values = {0.1, 0.9, 0.5, 0.4, 0.6};
  const BootstrapInterval a = BootstrapMeanInterval(values, 0.95, 500, 3);
  const BootstrapInterval b = BootstrapMeanInterval(values, 0.95, 500, 3);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapTest, ConstantDataHasZeroWidth) {
  const BootstrapInterval ci =
      BootstrapMeanInterval({0.5, 0.5, 0.5, 0.5}, 0.95, 200);
  EXPECT_DOUBLE_EQ(ci.lower, 0.5);
  EXPECT_DOUBLE_EQ(ci.upper, 0.5);
}

TEST(BootstrapTest, WiderConfidenceGivesWiderInterval) {
  Random rng(5);
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(rng.UniformDouble());
  const BootstrapInterval narrow = BootstrapMeanInterval(values, 0.5);
  const BootstrapInterval wide = BootstrapMeanInterval(values, 0.99);
  EXPECT_GT(wide.HalfWidth(), narrow.HalfWidth());
}

TEST(BootstrapTest, IntervalShrinksWithSampleSize) {
  Random rng(7);
  std::vector<double> small_sample, large_sample;
  for (int i = 0; i < 10; ++i) small_sample.push_back(rng.UniformDouble());
  for (int i = 0; i < 1000; ++i) large_sample.push_back(rng.UniformDouble());
  const BootstrapInterval small_ci = BootstrapMeanInterval(small_sample);
  const BootstrapInterval large_ci = BootstrapMeanInterval(large_sample);
  EXPECT_LT(large_ci.HalfWidth(), small_ci.HalfWidth());
}

TEST(BootstrapTest, CoversTrueMeanOfUniform) {
  // With many samples from U(0,1), the 95% CI should cover 0.5.
  Random rng(11);
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) values.push_back(rng.UniformDouble());
  const BootstrapInterval ci = BootstrapMeanInterval(values);
  EXPECT_LT(ci.lower, 0.5);
  EXPECT_GT(ci.upper, 0.5);
}

}  // namespace
}  // namespace maroon
