#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "datagen/recruitment_generator.h"

namespace maroon {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static Dataset SmallDataset() {
    RecruitmentOptions options;
    options.seed = 21;
    options.num_entities = 40;
    options.num_names = 16;
    return GenerateRecruitmentDataset(options);
  }

  static ExperimentOptions SmallExperiment() {
    ExperimentOptions options;
    options.max_eval_entities = 10;
    return options;
  }
};

TEST_F(ExperimentTest, PrepareSplitsEntities) {
  const Dataset dataset = SmallDataset();
  Experiment experiment(&dataset, SmallExperiment());
  experiment.Prepare();
  EXPECT_EQ(experiment.training_entities().size(), 20u);
  EXPECT_EQ(experiment.test_entities().size(), 20u);
  // Deterministic split.
  Experiment again(&dataset, SmallExperiment());
  again.Prepare();
  EXPECT_EQ(experiment.training_entities(), again.training_entities());
}

TEST_F(ExperimentTest, ModelsAreTrained) {
  const Dataset dataset = SmallDataset();
  Experiment experiment(&dataset, SmallExperiment());
  experiment.Prepare();
  EXPECT_TRUE(experiment.transition_model().HasAttribute(kAttrTitle));
  EXPECT_GT(experiment.transition_model().MaxLifespan(kAttrTitle), 0);
  EXPECT_GT(
      experiment.freshness_model().ObservationCount(0, kAttrTitle), 0);
  EXPECT_GT(experiment.muta_model().MaxDelta(kAttrTitle), 0);
}

TEST_F(ExperimentTest, RunWithoutPrepareReturnsEmpty) {
  const Dataset dataset = SmallDataset();
  Experiment experiment(&dataset, SmallExperiment());
  const ExperimentResult r = experiment.Run(Method::kMaroon);
  EXPECT_EQ(r.entities_evaluated, 0u);
}

TEST_F(ExperimentTest, EveryMethodProducesBoundedMetrics) {
  const Dataset dataset = SmallDataset();
  Experiment experiment(&dataset, SmallExperiment());
  experiment.Prepare();
  for (Method m : {Method::kMaroon, Method::kAfdsTransition,
                   Method::kAfdsMuta, Method::kAfdsDecay, Method::kStatic}) {
    const ExperimentResult r = experiment.Run(m);
    EXPECT_EQ(r.entities_evaluated, 10u) << MethodName(m);
    EXPECT_GE(r.precision, 0.0);
    EXPECT_LE(r.precision, 1.0);
    EXPECT_GE(r.recall, 0.0);
    EXPECT_LE(r.recall, 1.0);
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0);
    EXPECT_GE(r.completeness, 0.0);
    EXPECT_LE(r.completeness, 1.0);
    EXPECT_GE(r.phase1_seconds, 0.0);
    EXPECT_GE(r.phase2_seconds, 0.0);
    EXPECT_FALSE(r.ToString().empty());
  }
}

TEST_F(ExperimentTest, MethodNamesAreDistinct) {
  EXPECT_EQ(MethodName(Method::kMaroon), "MAROON");
  EXPECT_EQ(MethodName(Method::kAfdsMuta), "MUTA+AFDS");
  EXPECT_NE(MethodName(Method::kAfdsTransition), MethodName(Method::kStatic));
}

TEST_F(ExperimentTest, UncappedRunEvaluatesAllTestEntities) {
  const Dataset dataset = SmallDataset();
  ExperimentOptions options;  // max_eval_entities = 0
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  const ExperimentResult r = experiment.Run(Method::kStatic);
  EXPECT_EQ(r.entities_evaluated, experiment.test_entities().size());
  EXPECT_EQ(r.per_entity_precision.size(), r.entities_evaluated);
}

TEST_F(ExperimentTest, CiRenderingIncludesHalfWidths) {
  const Dataset dataset = SmallDataset();
  Experiment experiment(&dataset, SmallExperiment());
  experiment.Prepare();
  const ExperimentResult r = experiment.Run(Method::kStatic);
  const std::string text = r.ToStringWithCi();
  EXPECT_NE(text.find("±"), std::string::npos);
  EXPECT_NE(text.find("Static"), std::string::npos);
}

TEST_F(ExperimentTest, MaroonIsReasonablyEffectiveOnEasyData) {
  const Dataset dataset = SmallDataset();
  Experiment experiment(&dataset, SmallExperiment());
  experiment.Prepare();
  const ExperimentResult r = experiment.Run(Method::kMaroon);
  // Sanity floor, not a benchmark: the linkage must clearly beat chance.
  EXPECT_GT(r.recall, 0.3);
  EXPECT_GT(r.precision, 0.3);
  EXPECT_GT(r.completeness, 0.2);
}

}  // namespace
}  // namespace maroon
