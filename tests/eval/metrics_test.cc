#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TEST(PrecisionRecallTest, PerfectMatch) {
  const auto pr = ComputePrecisionRecall({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
  EXPECT_EQ(pr.true_positives, 3u);
}

TEST(PrecisionRecallTest, PartialOverlap) {
  // Result {1,2,3,4}, truth {3,4,5,6}: TP=2, P=0.5, R=0.5.
  const auto pr = ComputePrecisionRecall({1, 2, 3, 4}, {3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
  EXPECT_DOUBLE_EQ(pr.F1(), 0.5);
}

TEST(PrecisionRecallTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(ComputePrecisionRecall({}, {1, 2}).precision, 1.0);
  EXPECT_DOUBLE_EQ(ComputePrecisionRecall({}, {1, 2}).recall, 0.0);
  EXPECT_DOUBLE_EQ(ComputePrecisionRecall({1}, {}).recall, 1.0);
  EXPECT_DOUBLE_EQ(ComputePrecisionRecall({1}, {}).precision, 0.0);
}

TEST(PrecisionRecallTest, DeduplicatesInput) {
  const auto pr = ComputePrecisionRecall({1, 1, 2, 2}, {2, 2, 3});
  EXPECT_EQ(pr.result_size, 2u);
  EXPECT_EQ(pr.match_size, 2u);
  EXPECT_EQ(pr.true_positives, 1u);
}

TEST(PrecisionRecallTest, F1IsZeroWhenBothZero) {
  const auto pr = ComputePrecisionRecall({1}, {2});
  EXPECT_DOUBLE_EQ(pr.F1(), 0.0);
}

EntityProfile MakeProfile(
    std::initializer_list<std::tuple<Attribute, TimePoint, TimePoint, Value>>
        spans) {
  EntityProfile p("e", "E");
  for (const auto& [attr, b, e, v] : spans) {
    EXPECT_TRUE(p.sequence(attr).Insert(Triple(b, e, MakeValueSet({v}))).ok());
  }
  p.Normalize();
  return p;
}

TEST(ProfileQualityTest, IdenticalProfiles) {
  const EntityProfile p = MakeProfile({{"T", 2000, 2004, "Engineer"}});
  const auto q = CompareProfiles(p, p, {"T"});
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(q.completeness, 1.0);
  EXPECT_EQ(q.truth_facts, 5u);
}

TEST(ProfileQualityTest, PartialCoverage) {
  const EntityProfile truth = MakeProfile({{"T", 2000, 2009, "Engineer"}});
  const EntityProfile result = MakeProfile({{"T", 2000, 2004, "Engineer"}});
  const auto q = CompareProfiles(result, truth, {"T"});
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(q.completeness, 0.5);
}

TEST(ProfileQualityTest, WrongFactsHurtAccuracy) {
  const EntityProfile truth = MakeProfile({{"T", 2000, 2004, "Engineer"}});
  const EntityProfile result = MakeProfile(
      {{"T", 2000, 2004, "Engineer"}, {"T", 2005, 2009, "Astronaut"}});
  const auto q = CompareProfiles(result, truth, {"T"});
  EXPECT_DOUBLE_EQ(q.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(q.completeness, 1.0);
}

TEST(ProfileQualityTest, OnlySchemaAttributesCount) {
  const EntityProfile truth = MakeProfile({{"T", 2000, 2001, "a"}});
  const EntityProfile result = MakeProfile(
      {{"T", 2000, 2001, "a"}, {"Other", 2000, 2005, "junk"}});
  const auto q = CompareProfiles(result, truth, {"T"});
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
}

TEST(ProfileQualityTest, MultiValuedFactsAreCountedPerValue) {
  EntityProfile truth("e", "E");
  (void)truth.sequence("O").Append(
      Triple(2000, 2000, MakeValueSet({"S3", "XJek"})));
  EntityProfile result("e", "E");
  (void)result.sequence("O").Append(Triple(2000, 2000, MakeValueSet({"S3"})));
  const auto q = CompareProfiles(result, truth, {"O"});
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(q.completeness, 0.5);
}

TEST(ProfileQualityTest, EmptyProfiles) {
  const EntityProfile empty("e", "E");
  const EntityProfile truth = MakeProfile({{"T", 2000, 2001, "a"}});
  const auto q = CompareProfiles(empty, truth, {"T"});
  EXPECT_DOUBLE_EQ(q.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(q.completeness, 0.0);
}

TEST(PerAttributeQualityTest, BreaksDownByAttribute) {
  const EntityProfile truth = MakeProfile(
      {{"T", 2000, 2004, "Engineer"}, {"O", 2000, 2004, "Acme"}});
  const EntityProfile result = MakeProfile(
      {{"T", 2000, 2004, "Engineer"},   // perfect on T
       {"O", 2000, 2001, "Acme"}});     // partial on O
  const auto per = CompareProfilesPerAttribute(result, truth, {"T", "O"});
  EXPECT_DOUBLE_EQ(per.at("T").completeness, 1.0);
  EXPECT_DOUBLE_EQ(per.at("O").completeness, 0.4);
  EXPECT_DOUBLE_EQ(per.at("T").accuracy, 1.0);
  EXPECT_DOUBLE_EQ(per.at("O").accuracy, 1.0);
  // The aggregate sits between the per-attribute values.
  const auto aggregate = CompareProfiles(result, truth, {"T", "O"});
  EXPECT_GT(aggregate.completeness, per.at("O").completeness);
  EXPECT_LT(aggregate.completeness, per.at("T").completeness);
}

TEST(MeanAccumulatorTest, Averages) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.0);
  EXPECT_EQ(acc.count(), 3u);
}

}  // namespace
}  // namespace maroon
