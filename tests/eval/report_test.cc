#include "eval/report.h"

#include <gtest/gtest.h>

#include "datagen/recruitment_generator.h"

namespace maroon {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static Dataset SmallDataset() {
    RecruitmentOptions options;
    options.seed = 9;
    options.num_entities = 30;
    options.num_names = 12;
    return GenerateRecruitmentDataset(options);
  }
  static ExperimentOptions Base() {
    ExperimentOptions options;
    options.max_eval_entities = 6;
    return options;
  }
};

TEST_F(ReportTest, ContainsAllSections) {
  const Dataset dataset = SmallDataset();
  ReportOptions report_options;
  report_options.methods = {Method::kMaroon, Method::kStatic};
  report_options.theta_sweep = {0.05, 0.2};
  const std::string report =
      GenerateComparisonReport(dataset, Base(), report_options);

  EXPECT_NE(report.find("# MAROON evaluation report"), std::string::npos);
  EXPECT_NE(report.find("## Corpus"), std::string::npos);
  EXPECT_NE(report.find("## Method comparison"), std::string::npos);
  EXPECT_NE(report.find("## Runtime"), std::string::npos);
  EXPECT_NE(report.find("## θ sweep"), std::string::npos);
  EXPECT_NE(report.find("| MAROON |"), std::string::npos);
  EXPECT_NE(report.find("| Static |"), std::string::npos);
  // Confidence half-widths rendered.
  EXPECT_NE(report.find("±"), std::string::npos);
  // Dataset statistics embedded.
  EXPECT_NE(report.find("CareerHub"), std::string::npos);
}

TEST_F(ReportTest, SweepSectionOptional) {
  const Dataset dataset = SmallDataset();
  ReportOptions report_options;
  report_options.methods = {Method::kStatic};
  const std::string report =
      GenerateComparisonReport(dataset, Base(), report_options);
  EXPECT_EQ(report.find("θ sweep"), std::string::npos);
}

TEST_F(ReportTest, CustomTitle) {
  const Dataset dataset = SmallDataset();
  ReportOptions report_options;
  report_options.title = "Nightly linkage quality";
  report_options.methods = {Method::kStatic};
  const std::string report =
      GenerateComparisonReport(dataset, Base(), report_options);
  EXPECT_NE(report.find("# Nightly linkage quality"), std::string::npos);
}

}  // namespace
}  // namespace maroon
