#include "eval/error_analysis.h"

#include <gtest/gtest.h>

#include "baselines/static_linkage.h"
#include "similarity/record_similarity.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

TEST(ErrorAnalysisTest, PerfectLinkageHasNoErrors) {
  const Dataset dataset = testing::PaperRecords();
  const ErrorBreakdown b = AnalyzeLinkageErrors(
      dataset, "david_1", dataset.TrueMatchesOf("david_1"));
  EXPECT_EQ(b.true_positives, 8u);
  EXPECT_EQ(b.false_positives, 0u);
  EXPECT_EQ(b.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(b.precision(), 1.0);
  EXPECT_DOUBLE_EQ(b.recall(), 1.0);
}

TEST(ErrorAnalysisTest, CategorizesMissedFutureStates) {
  const Dataset dataset = testing::PaperRecords();
  // Only the early records linked: r1-r4 (ids 0-3).
  const ErrorBreakdown b =
      AnalyzeLinkageErrors(dataset, "david_1", {0, 1, 2, 3});
  EXPECT_EQ(b.true_positives, 4u);
  EXPECT_EQ(b.false_negatives, 4u);
  // David's clean profile ends 2009; r5 (2011), r7 (2012), r8/r9 (2013) are
  // all missed *future* states — the Example-1 failure mode.
  EXPECT_EQ(b.missed_future_states, 4u);
  EXPECT_EQ(b.missed_in_history, 0u);
}

TEST(ErrorAnalysisTest, CategorizesDecoyAndUnlabeledLinks) {
  const Dataset dataset = testing::PaperRecords();
  // Linking the decoy r6 (id 5, unlabeled) plus a true record.
  const ErrorBreakdown b = AnalyzeLinkageErrors(dataset, "david_1", {0, 5});
  EXPECT_EQ(b.true_positives, 1u);
  EXPECT_EQ(b.false_positives, 1u);
  EXPECT_EQ(b.unlabeled_links, 1u);
  EXPECT_EQ(b.decoy_links, 0u);
  EXPECT_NE(b.ToString().find("unlabeled 1"), std::string::npos);
}

TEST(ErrorAnalysisTest, StaticLinkageMissesFutureStates) {
  // Quantify the paper's core claim: static linkage's false negatives are
  // dominated by future states.
  const Dataset dataset = testing::PaperRecords();
  SimilarityCalculator similarity;
  StaticLinkage linkage(&similarity, StaticLinkageOptions{0.8});
  std::vector<const TemporalRecord*> candidates;
  for (const TemporalRecord& r : dataset.records()) candidates.push_back(&r);
  const std::vector<RecordId> matched =
      linkage.Link(dataset.target("david_1").value()->clean_profile,
                   candidates);
  const ErrorBreakdown b = AnalyzeLinkageErrors(dataset, "david_1", matched);
  EXPECT_GT(b.false_negatives, 0u);
  EXPECT_GT(b.missed_future_states, 0u);
  EXPECT_GE(b.missed_future_states, b.missed_in_history);
}

TEST(ErrorAnalysisTest, AccumulatesAcrossEntities) {
  ErrorBreakdown total;
  ErrorBreakdown a;
  a.true_positives = 3;
  a.missed_future_states = 1;
  a.false_negatives = 1;
  ErrorBreakdown b;
  b.true_positives = 2;
  b.decoy_links = 2;
  b.false_positives = 2;
  total += a;
  total += b;
  EXPECT_EQ(total.true_positives, 5u);
  EXPECT_EQ(total.false_negatives, 1u);
  EXPECT_EQ(total.false_positives, 2u);
  EXPECT_EQ(total.missed_future_states, 1u);
  EXPECT_EQ(total.decoy_links, 2u);
}

TEST(ErrorAnalysisTest, EmptyEverything) {
  Dataset dataset;
  const ErrorBreakdown b = AnalyzeLinkageErrors(dataset, "nobody", {});
  EXPECT_EQ(b.true_positives, 0u);
  EXPECT_DOUBLE_EQ(b.precision(), 1.0);
  EXPECT_DOUBLE_EQ(b.recall(), 1.0);
}

}  // namespace
}  // namespace maroon
