// Reproduces Figure 7: running time of MAROON vs MUTA+AFDS, split into
// Phase I (clustering) and Phase II (matching), on both datasets.
//
// Paper shapes to reproduce: the two methods spend similar time in Phase I;
// MAROON's Phase II is cheaper (transition-probability scoring with
// incremental updates vs weighted attribute similarity), so MAROON's total
// is lower.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace maroon::bench {
namespace {

void PrintRuntimeRow(const std::string& corpus, const ExperimentResult& r) {
  std::cout << "  " << MethodName(r.method) << ": Phase I "
            << FormatDouble(r.phase1_seconds, 3) << "s, Phase II "
            << FormatDouble(r.phase2_seconds, 3) << "s, Total "
            << FormatDouble(r.total_seconds(), 3) << "s  (n="
            << r.entities_evaluated << ")\n";
  EmitBenchRow("fig7_runtime",
               {{"corpus", corpus}, {"method", MethodName(r.method)}},
               {{"phase1_s", r.phase1_seconds},
                {"phase2_s", r.phase2_seconds},
                {"total_s", r.total_seconds()},
                {"threads",
                 static_cast<double>(ThreadPool::DefaultThreadCount())},
                {"entities", static_cast<double>(r.entities_evaluated)}});
}

void PrintFigure7() {
  PrintHeader("Figure 7: running time comparison");

  {
    std::cout << "(a) Recruitment data\n";
    const Dataset dataset =
        GenerateRecruitmentDataset(BenchRecruitmentOptions());
    Experiment experiment(&dataset, BenchExperimentOptions());
    experiment.Prepare();
    PrintRuntimeRow("recruitment", experiment.Run(Method::kMaroon));
    PrintRuntimeRow("recruitment", experiment.Run(Method::kAfdsMuta));
  }
  {
    std::cout << "\n(b) DBLP data\n";
    const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());
    Experiment experiment(&corpus.dataset, BenchExperimentOptions());
    experiment.Prepare();
    PrintRuntimeRow("dblp", experiment.Run(Method::kMaroon));
    PrintRuntimeRow("dblp", experiment.Run(Method::kAfdsMuta));
  }
}

void RunMethodBenchmark(benchmark::State& state, Method method) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ExperimentOptions options = BenchExperimentOptions();
  options.max_eval_entities = 15;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  double phase1 = 0.0, phase2 = 0.0;
  for (auto _ : state) {
    ExperimentResult r = experiment.Run(method);
    phase1 += r.phase1_seconds;
    phase2 += r.phase2_seconds;
    benchmark::DoNotOptimize(r.f1);
  }
  state.counters["phase1_s"] =
      benchmark::Counter(phase1 / static_cast<double>(state.iterations()));
  state.counters["phase2_s"] =
      benchmark::Counter(phase2 / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * 15);
}

void BM_MaroonTotal(benchmark::State& state) {
  RunMethodBenchmark(state, Method::kMaroon);
}
BENCHMARK(BM_MaroonTotal)->Unit(benchmark::kMillisecond);

void BM_MutaAfdsTotal(benchmark::State& state) {
  RunMethodBenchmark(state, Method::kAfdsMuta);
}
BENCHMARK(BM_MutaAfdsTotal)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintFigure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
