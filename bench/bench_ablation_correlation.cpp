// Ablation (paper §6 future work): attribute correlation. Trains the joint
// (Organization ⊗ Title) transition model next to the independent marginals
// and compares held-out log-likelihood of year-over-year state transitions.
//
// Expected shape: the joint model wins (positive gain) because ~80% of the
// synthetic careers change organization and title simultaneously — exactly
// the correlation the paper suggests exploiting.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "transition/joint_transition_model.h"

namespace maroon::bench {
namespace {

void PrintAblation() {
  PrintHeader("Ablation: joint (Org x Title) vs independent transitions");
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ProfileSet train, held_out;
  size_t i = 0;
  for (const auto& [id, target] : dataset.targets()) {
    ((i++ % 2 == 0) ? train : held_out).push_back(target.ground_truth);
  }
  const JointTransitionModel joint =
      JointTransitionModel::Train(train, kAttrOrganization, kAttrTitle);
  const TransitionModel marginals =
      TransitionModel::Train(train, {kAttrOrganization, kAttrTitle});
  const CorrelationReport report =
      CompareJointVsIndependent(joint, marginals, held_out);

  std::cout << "held-out transitions scored: " << report.transitions_scored
            << "\n";
  std::cout << "mean log-likelihood (joint):       "
            << FormatDouble(report.joint_mean_log_likelihood, 4) << "\n";
  std::cout << "mean log-likelihood (independent): "
            << FormatDouble(report.independent_mean_log_likelihood, 4) << "\n";
  std::cout << "gain (joint - independent):        "
            << FormatDouble(report.Gain(), 4)
            << (report.Gain() > 0 ? "  (joint wins)" : "") << "\n";
}

void BM_TrainJointModel(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ProfileSet profiles;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
  }
  for (auto _ : state) {
    JointTransitionModel joint = JointTransitionModel::Train(
        profiles, kAttrOrganization, kAttrTitle);
    benchmark::DoNotOptimize(
        joint.model().MaxLifespan(joint.joint_attribute()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(profiles.size()));
}
BENCHMARK(BM_TrainJointModel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
