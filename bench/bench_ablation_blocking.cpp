// Ablation: candidate blocking under name noise. Social sources write the
// entity name with typos at a configurable rate; exact normalized-name
// blocking (the paper's protocol) then misses those records outright, while
// fuzzy Jaro-Winkler blocking recovers them at some candidate-set cost.
//
// Expected shape: with no noise the two block identically; as noise grows,
// exact blocking's recall ceiling drops while fuzzy blocking holds recall.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "matching/blocker.h"

namespace maroon::bench {
namespace {

void PrintAblation() {
  PrintHeader("Ablation: exact vs fuzzy candidate blocking under name noise");
  for (double typo_rate : {0.0, 0.2, 0.4}) {
    RecruitmentOptions data_options = BenchRecruitmentOptions();
    data_options.social_source_name_typo_rate = typo_rate;
    const Dataset dataset = GenerateRecruitmentDataset(data_options);
    std::cout << "typo rate " << FormatDouble(typo_rate, 1) << ":\n";
    for (bool fuzzy : {false, true}) {
      ExperimentOptions options = BenchExperimentOptions();
      options.use_fuzzy_blocking = fuzzy;
      Experiment experiment(&dataset, options);
      experiment.Prepare();
      std::cout << (fuzzy ? "  fuzzy blocking: " : "  exact blocking: ")
                << experiment.Run(Method::kMaroon).ToString() << "\n";
    }
  }
}

void BM_ExactBlocking(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  NameBlocker blocker;
  blocker.Index(dataset);
  auto it = dataset.targets().begin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blocker.Candidates(it->second.clean_profile.name()).size());
    if (++it == dataset.targets().end()) it = dataset.targets().begin();
  }
}
BENCHMARK(BM_ExactBlocking);

void BM_FuzzyBlocking(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  BlockerOptions options;
  options.fuzzy = true;
  NameBlocker blocker(options);
  blocker.Index(dataset);
  auto it = dataset.targets().begin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blocker.Candidates(it->second.clean_profile.name()).size());
    if (++it == dataset.targets().end()) it = dataset.targets().begin();
  }
}
BENCHMARK(BM_FuzzyBlocking);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
