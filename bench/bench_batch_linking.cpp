// Deployment-shape benchmark (ours): batch-linking every target entity of a
// corpus with exclusive record assignment — the workload a production
// deployment runs nightly. Reports contested-record statistics and
// throughput.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "matching/batch_linker.h"

namespace maroon::bench {
namespace {

void PrintBatchSummary() {
  PrintHeader("Batch linking: all entities, exclusive record assignment");
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  Experiment experiment(&dataset, BenchExperimentOptions());
  experiment.Prepare();

  MaroonOptions options;
  options.matcher.single_valued_attributes = dataset.attributes();
  Maroon maroon(&experiment.transition_model(), &experiment.freshness_model(),
                &experiment.similarity(), dataset.attributes(), options);

  std::vector<EntityId> targets;
  for (const auto& [id, t] : dataset.targets()) targets.push_back(id);

  BatchLinker linker(&maroon);
  const auto start = std::chrono::steady_clock::now();
  const BatchLinkResult result = linker.LinkAll(dataset, targets);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "entities:            " << targets.size() << "\n";
  std::cout << "records assigned:    " << result.assignment.size() << " of "
            << dataset.NumRecords() << "\n";
  std::cout << "contested records:   " << result.contested_records << " ("
            << FormatDouble(100.0 *
                                static_cast<double>(result.contested_records) /
                                static_cast<double>(
                                    std::max<size_t>(1,
                                                     result.assignment.size())),
                            1)
            << "% of assigned)\n";
  std::cout << "wall time:           " << FormatDouble(seconds, 2) << " s  ("
            << FormatDouble(1000.0 * seconds /
                                static_cast<double>(targets.size()),
                            2)
            << " ms/entity)\n";

  // Assignment correctness against ground truth.
  size_t correct = 0;
  for (const auto& [rid, entity] : result.assignment) {
    if (dataset.LabelOf(rid) == entity) ++correct;
  }
  std::cout << "assignment accuracy: "
            << FormatDouble(static_cast<double>(correct) /
                                static_cast<double>(
                                    std::max<size_t>(1,
                                                     result.assignment.size())),
                            3)
            << "\n";
}

void BM_BatchLinkAll(benchmark::State& state) {
  RecruitmentOptions data_options;
  data_options.seed = 2015;
  data_options.num_entities = static_cast<size_t>(state.range(0));
  data_options.num_names = data_options.num_entities / 3;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);
  Experiment experiment(&dataset, {});
  experiment.Prepare();
  MaroonOptions options;
  options.matcher.single_valued_attributes = dataset.attributes();
  Maroon maroon(&experiment.transition_model(), &experiment.freshness_model(),
                &experiment.similarity(), dataset.attributes(), options);
  std::vector<EntityId> targets;
  for (const auto& [id, t] : dataset.targets()) targets.push_back(id);
  BatchLinker linker(&maroon);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linker.LinkAll(dataset, targets).assignment.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(targets.size()));
}
BENCHMARK(BM_BatchLinkAll)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintBatchSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
