// Durability cost study (ours): what the WAL-before-apply contract costs
// the streaming linker. Streams the bench Recruitment corpus through three
// modes — no WAL (direct apply), WAL with fsync per frame (the durable
// default), WAL with OS-buffered writes — and times one snapshot write of
// the final store. All three modes must land on the identical store hash;
// the rows feed the replay durability section of BENCH_runtime.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/profile_snapshot.h"
#include "core/profile_store.h"
#include "core/profile_wal.h"
#include "matching/stream_linker.h"

namespace maroon::bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ModeResult {
  double wall_s = 0;
  uint64_t records = 0;
  uint64_t hash = 0;
};

/// Baseline: the same deterministic apply path with no log and no
/// snapshots — the upper bound on stream throughput.
ModeResult RunNoWal(const Dataset& dataset) {
  ProfileStore store;
  const auto start = std::chrono::steady_clock::now();
  uint64_t applied = 0;
  for (const TemporalRecord& record : dataset.records()) {
    if (record.values().empty()) continue;
    const auto entity = ApplyRecordToStore(record, &store);
    MAROON_CHECK(entity.ok()) << entity.status();
    ++applied;
  }
  return {SecondsSince(start), applied, HashProfileStore(store)};
}

ModeResult RunWal(const Dataset& dataset, const std::string& wal_dir,
                  int sync_every) {
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  StreamLinkerOptions options;
  options.wal_path = wal_dir + "/profile.wal";
  options.max_queue = 256;
  options.wal.sync_every = sync_every;
  auto linker = StreamLinker::Open(options);
  MAROON_CHECK(linker.ok()) << linker.status();

  const auto start = std::chrono::steady_clock::now();
  for (const TemporalRecord& record : dataset.records()) {
    Status submitted = linker->Submit(record);
    if (submitted.code() == StatusCode::kResourceExhausted) {
      MAROON_CHECK(linker->Drain().ok());
      submitted = linker->Submit(record);
    }
    if (submitted.code() == StatusCode::kInvalidArgument) continue;
    MAROON_CHECK(submitted.ok()) << submitted;
  }
  MAROON_CHECK(linker->Flush().ok());
  ModeResult result{SecondsSince(start), linker->stats().applied,
                    HashProfileStore(linker->store())};
  MAROON_CHECK(linker->Close().ok());
  return result;
}

void EmitModeRow(const char* mode, const ModeResult& r) {
  EmitBenchRow("replay_durability",
               {{"corpus", "recruitment"}, {"mode", mode}},
               {{"records", static_cast<double>(r.records)},
                {"wall_s", r.wall_s},
                {"records_per_s",
                 r.wall_s > 0 ? static_cast<double>(r.records) / r.wall_s
                              : 0.0}});
}

void RunDurabilityStudy() {
  PrintHeader("Replay durability: WAL + snapshot cost (Recruitment)");
  RecruitmentOptions corpus_options = BenchRecruitmentOptions();
  const Dataset dataset = GenerateRecruitmentDataset(corpus_options);
  const std::string work =
      (std::filesystem::temp_directory_path() / "maroon_bench_durability")
          .string();

  const ModeResult no_wal = RunNoWal(dataset);
  const ModeResult buffered = RunWal(dataset, work + "/buffered",
                                     /*sync_every=*/0);
  const ModeResult synced = RunWal(dataset, work + "/synced",
                                   /*sync_every=*/1);
  MAROON_CHECK(no_wal.hash == buffered.hash && buffered.hash == synced.hash)
      << "durability modes diverged: the WAL path is not deterministic";

  // Snapshot write time: rebuild the final store once, then time the full
  // serialize + fsync + atomic-publish cycle.
  ProfileStore store;
  for (const TemporalRecord& record : dataset.records()) {
    if (record.values().empty()) continue;
    MAROON_CHECK(ApplyRecordToStore(record, &store).ok());
  }
  const std::string snapshot_dir = work + "/snapshots";
  std::filesystem::remove_all(snapshot_dir);
  std::filesystem::create_directories(snapshot_dir);
  const auto snap_start = std::chrono::steady_clock::now();
  MAROON_CHECK(WriteSnapshot(store, /*last_seq=*/no_wal.records,
                             snapshot_dir)
                   .ok());
  const double snapshot_s = SecondsSince(snap_start);
  uint64_t snapshot_bytes = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(snapshot_dir)) {
    snapshot_bytes += entry.file_size();
  }

  std::cout << "mode          records  wall_s   records_per_s\n";
  const auto print = [](const char* mode, const ModeResult& r) {
    std::cout << "  " << mode << "  " << r.records << "  "
              << FormatDouble(r.wall_s, 4) << "  "
              << FormatDouble(r.wall_s > 0
                                  ? static_cast<double>(r.records) / r.wall_s
                                  : 0.0,
                              1)
              << "\n";
  };
  print("no_wal      ", no_wal);
  print("wal_buffered", buffered);
  print("wal_synced  ", synced);
  std::cout << "  snapshot: " << store.size() << " entities, "
            << snapshot_bytes << " bytes in " << FormatDouble(snapshot_s, 4)
            << "s\n";

  EmitModeRow("no_wal", no_wal);
  EmitModeRow("wal_buffered", buffered);
  EmitModeRow("wal_synced", synced);
  EmitBenchRow("replay_durability",
               {{"corpus", "recruitment"}, {"mode", "snapshot"}},
               {{"entities", static_cast<double>(store.size())},
                {"snapshot_write_s", snapshot_s},
                {"snapshot_bytes", static_cast<double>(snapshot_bytes)}});

  std::filesystem::remove_all(work);
}

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  maroon::bench::RunDurabilityStudy();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
