#ifndef MAROON_BENCH_BENCH_COMMON_H_
#define MAROON_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "datagen/dblp_generator.h"
#include "datagen/recruitment_generator.h"
#include "eval/experiment.h"
#include "obs/json.h"

namespace maroon::bench {

/// Multiplies dataset sizes; set MAROON_BENCH_SCALE=N to run paper-scale
/// corpora (the defaults keep every bench to seconds).
inline int Scale() {
  const char* env = std::getenv("MAROON_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int scale = std::atoi(env);
  return scale >= 1 ? scale : 1;
}

/// The Recruitment corpus used by the figure benches.
inline RecruitmentOptions BenchRecruitmentOptions() {
  RecruitmentOptions options;
  options.seed = 2015;
  options.num_entities = 300 * static_cast<size_t>(Scale());
  options.num_names = options.num_entities / 3;
  return options;
}

/// The DBLP corpus (paper-sized by default: 216 authors over 21 names).
inline DblpOptions BenchDblpOptions() {
  DblpOptions options;
  options.seed = 2015;
  options.num_entities = 216 * static_cast<size_t>(Scale());
  options.num_names = 21 * static_cast<size_t>(Scale());
  return options;
}

/// Evaluation cap per method, scaled.
inline size_t BenchEvalEntities() {
  return 60 * static_cast<size_t>(Scale());
}

inline ExperimentOptions BenchExperimentOptions() {
  ExperimentOptions options;
  options.max_eval_entities = BenchEvalEntities();
  return options;
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "(seed 2015, scale " << Scale()
            << "; set MAROON_BENCH_SCALE to enlarge)\n\n";
}

/// Appends one JSONL row to the file named by MAROON_BENCH_JSON (no-op when
/// the variable is unset). tools/run_bench.sh collects these rows into
/// BENCH_runtime.json; each row is
///   {"schema": "maroon_bench_runtime_v1", "bench": ...,
///    <label: string>..., <value: number>...}.
/// The per-row schema tag lets run_bench.sh (and any other consumer)
/// validate each row before assembling the document.
inline void EmitBenchRow(
    const std::string& bench,
    std::initializer_list<std::pair<const char*, std::string>> labels,
    std::initializer_list<std::pair<const char*, double>> values) {
  const char* path = std::getenv("MAROON_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("maroon_bench_runtime_v1");
  w.Key("bench").String(bench);
  for (const auto& [key, value] : labels) w.Key(key).String(value);
  for (const auto& [key, value] : values) w.Key(key).Number(value);
  w.EndObject();
  std::ofstream out(path, std::ios::app);
  if (out) out << w.text() << "\n";
}

/// Runs `methods` on a prepared experiment and prints one row per method.
inline std::vector<ExperimentResult> RunAndPrint(
    const Experiment& experiment, const std::vector<Method>& methods) {
  std::vector<ExperimentResult> results;
  for (Method m : methods) {
    results.push_back(experiment.Run(m));
    std::cout << "  " << results.back().ToString() << "\n";
  }
  return results;
}

}  // namespace maroon::bench

#endif  // MAROON_BENCH_BENCH_COMMON_H_
