// Microbenchmarks of the core primitives: string similarity, TF-IDF,
// temporal-sequence queries, transition-table probability lookups, and
// single-entity Phase I / Phase II runs. Pure google-benchmark — no
// reproduction table.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "clustering/adjusted_binding_clusterer.h"
#include "freshness/freshness_model.h"
#include "matching/maroon.h"
#include "similarity/record_similarity.h"
#include "similarity/soft_tfidf.h"
#include "similarity/string_metrics.h"
#include "similarity/tfidf.h"
#include "transition/transition_model.h"

namespace maroon::bench {
namespace {

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JaroWinklerSimilarity("Quest Software", "Quest Systems"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LevenshteinDistance("University of Springfield", "University of "
                                                         "Lakewood"));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_TfIdfCosine(benchmark::State& state) {
  TfIdfModel model;
  model.AddDocument({"quest", "software", "manager"});
  model.AddDocument({"university", "of", "springfield"});
  model.AddDocument({"vertex", "labs", "engineer"});
  const std::vector<std::string> a = {"quest", "software", "director"};
  const std::vector<std::string> b = {"quest", "labs", "director"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.CosineSimilarity(a, b));
  }
}
BENCHMARK(BM_TfIdfCosine);

void BM_SoftTfIdf(benchmark::State& state) {
  TfIdfModel model;
  model.AddDocument({"quest", "software", "manager"});
  model.AddDocument({"university", "of", "springfield"});
  model.AddDocument({"vertex", "labs", "engineer"});
  SoftTfIdf soft(&model);
  const std::vector<std::string> a = {"quest", "sofware", "director"};
  const std::vector<std::string> b = {"quest", "software", "manager"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(soft.Similarity(a, b));
  }
}
BENCHMARK(BM_SoftTfIdf);

void BM_TrigramSimilarity(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TrigramSimilarity("Quest Software Inc", "Quest Softwares"));
  }
}
BENCHMARK(BM_TrigramSimilarity);

void BM_AdjustedBindingClustering(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  // One entity's candidate pool.
  const EntityId& entity = dataset.targets().begin()->first;
  std::vector<const TemporalRecord*> candidates;
  for (RecordId id : dataset.CandidatesFor(entity)) {
    candidates.push_back(&dataset.record(id));
  }
  SimilarityCalculator similarity;
  AdjustedBindingClusterer clusterer(&similarity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clusterer.ClusterRecords(candidates).size());
  }
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(candidates.size()));
}
BENCHMARK(BM_AdjustedBindingClustering)->Unit(benchmark::kMicrosecond);

void BM_SequenceValuesAt(benchmark::State& state) {
  TemporalSequence seq;
  for (int i = 0; i < 20; ++i) {
    (void)seq.Append(Triple(static_cast<TimePoint>(2000 + 2 * i),
                            static_cast<TimePoint>(2001 + 2 * i),
                            MakeValueSet({std::string("v") +
                                          std::to_string(i)})));
  }
  TimePoint t = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.ValuesAt(t));
    t = t == 2039 ? 2000 : t + 1;
  }
}
BENCHMARK(BM_SequenceValuesAt);

TransitionModel TrainedModel() {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ProfileSet profiles;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
  }
  return TransitionModel::Train(profiles, dataset.attributes());
}

void BM_IntervalProbability(benchmark::State& state) {
  const TransitionModel model = TrainedModel();
  const ValueSet from = MakeValueSet({"Manager"});
  const ValueSet to = MakeValueSet({"Director"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.IntervalProbability(
        kAttrTitle, from, to, Interval(2000, 2008), Interval(2010, 2012)));
  }
}
BENCHMARK(BM_IntervalProbability);

void BM_SingleEntityLink(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ProfileSet profiles;
  std::vector<EntityId> all_entities;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
    all_entities.push_back(id);
  }
  const TransitionModel transition =
      TransitionModel::Train(profiles, dataset.attributes());
  const FreshnessModel freshness =
      FreshnessModel::Train(dataset, all_entities);
  SimilarityCalculator similarity;
  MaroonOptions options;
  options.matcher.single_valued_attributes = dataset.attributes();
  Maroon maroon(&transition, &freshness, &similarity, dataset.attributes(),
                options);

  const EntityId& entity = all_entities.front();
  const auto target = dataset.target(entity);
  std::vector<const TemporalRecord*> candidates;
  for (RecordId id : dataset.CandidatesFor(entity)) {
    candidates.push_back(&dataset.record(id));
  }
  for (auto _ : state) {
    LinkResult r = maroon.Link((*target)->clean_profile, candidates);
    benchmark::DoNotOptimize(r.match.matched_records.size());
  }
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(candidates.size()));
}
BENCHMARK(BM_SingleEntityLink)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace maroon::bench

BENCHMARK_MAIN();
