// Ablation: corpus "diversity" — the fraction of entities that never change
// their attributes. The paper attributes Figure 4(b)'s narrower margin to
// DBLP's ~50% never-moving entities ("the difference narrows on this
// dataset as 50% of the entities never change affiliations", §5.3). This
// bench reproduces that explanation inside one controlled world: as the
// stable fraction grows, the transition model's advantage over MUTA should
// shrink — when nothing changes, a global recurrence probability is enough.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

namespace maroon::bench {
namespace {

void PrintAblation() {
  PrintHeader("Ablation: entity-diversity vs temporal-model advantage");
  std::cout << "stable%   MAROON_TR F1   MUTA F1   gap\n";
  for (double stable : {0.0, 0.5, 0.8}) {
    RecruitmentOptions data_options = BenchRecruitmentOptions();
    data_options.career.stable_entity_fraction = stable;
    const Dataset dataset = GenerateRecruitmentDataset(data_options);
    Experiment experiment(&dataset, BenchExperimentOptions());
    experiment.Prepare();
    const ExperimentResult tr = experiment.Run(Method::kAfdsTransition);
    const ExperimentResult muta = experiment.Run(Method::kAfdsMuta);
    std::cout << "  " << FormatDouble(stable * 100, 0) << "       "
              << FormatDouble(tr.f1, 3) << "          "
              << FormatDouble(muta.f1, 3) << "     "
              << FormatDouble(tr.f1 - muta.f1, 3) << "\n";
  }
  std::cout << "\n(paper §5.3: the MAROON-vs-MUTA gap narrows as more "
               "entities never change)\n";
}

void BM_GenerateStableWorld(benchmark::State& state) {
  RecruitmentOptions options = BenchRecruitmentOptions();
  options.career.stable_entity_fraction =
      static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateRecruitmentDataset(options).NumRecords());
  }
}
BENCHMARK(BM_GenerateStableWorld)->Arg(0)->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
