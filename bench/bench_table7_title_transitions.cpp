// Reproduces Table 7: learnt transition probabilities for Job Title at
// Δt ∈ {3, 5, 8, 10} on the Recruitment corpus.
//
// Paper shapes to reproduce:
//   * self-transition probability decreases with Δt for every title;
//   * senior titles persist longer — Pr(Director -> Director) exceeds
//     Pr(Engineer -> Engineer) at the same Δt (about 2x at Δt = 5);
//   * Manager -> Director is much likelier than Manager -> Consultant.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "transition/transition_model.h"

namespace maroon::bench {
namespace {

ProfileSet RecruitmentProfiles() {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ProfileSet profiles;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
  }
  return profiles;
}

void PrintTable7() {
  PrintHeader("Table 7: transition probability for Job Title (Recruitment)");
  const ProfileSet profiles = RecruitmentProfiles();
  const TransitionModel model = TransitionModel::Train(profiles, {kAttrTitle});

  const std::vector<std::pair<Value, Value>> pairs = {
      {"Engineer", "Engineer"},   {"Engineer", "Sr. Engineer"},
      {"Engineer", "Manager"},    {"Manager", "Manager"},
      {"Manager", "Director"},    {"Manager", "Consultant"},
      {"Director", "Director"},   {"Director", "CEO"},
      {"Director", "President"},
  };
  const std::vector<int64_t> deltas = {3, 5, 8, 10};

  std::cout << std::left << std::setw(14) << "v" << std::setw(16) << "v'";
  for (int64_t dt : deltas) {
    std::cout << std::right << std::setw(9) << ("dt=" + std::to_string(dt));
  }
  std::cout << "\n";
  for (const auto& [from, to] : pairs) {
    std::cout << std::left << std::setw(14) << from << std::setw(16) << to;
    for (int64_t dt : deltas) {
      std::cout << std::right << std::setw(9)
                << FormatDouble(model.Probability(kAttrTitle, from, to, dt),
                                3);
    }
    std::cout << "\n";
  }

  // The shape checks the paper calls out in §5.2.
  const double director_5 =
      model.Probability(kAttrTitle, "Director", "Director", 5);
  const double engineer_5 =
      model.Probability(kAttrTitle, "Engineer", "Engineer", 5);
  std::cout << "\nShape check: Pr(Director stays, dt=5) / Pr(Engineer stays, "
               "dt=5) = "
            << FormatDouble(engineer_5 > 0 ? director_5 / engineer_5 : 0.0, 2)
            << " (paper: ~2x)\n";
}

void BM_TrainTransitionModelRecruitment(benchmark::State& state) {
  const ProfileSet profiles = RecruitmentProfiles();
  for (auto _ : state) {
    TransitionModel model = TransitionModel::Train(profiles, {kAttrTitle});
    benchmark::DoNotOptimize(model.MaxLifespan(kAttrTitle));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(profiles.size()));
}
BENCHMARK(BM_TrainTransitionModelRecruitment);

void BM_ProbabilityLookup(benchmark::State& state) {
  const ProfileSet profiles = RecruitmentProfiles();
  const TransitionModel model = TransitionModel::Train(profiles, {kAttrTitle});
  int64_t dt = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Probability(kAttrTitle, "Manager", "Director", dt));
    dt = dt % 12 + 1;
  }
}
BENCHMARK(BM_ProbabilityLookup);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintTable7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
