// Ablation: sensitivity to MAROON's thresholds — the match threshold θ
// (Algorithm 3) and the stale-placement threshold µ' (Eq. 10).
//
// Expected shapes: raising θ trades recall for precision; µ' has a sweet
// spot — too low admits stale values into the wrong states, too high blocks
// legitimate delayed evidence.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

namespace maroon::bench {
namespace {

void PrintThetaSweep(const Dataset& dataset) {
  std::cout << "theta sweep (mu' = 0.2):\n";
  for (double theta : {0.005, 0.02, 0.05, 0.1, 0.2}) {
    ExperimentOptions options = BenchExperimentOptions();
    options.maroon.matcher.theta = theta;
    Experiment experiment(&dataset, options);
    experiment.Prepare();
    const ExperimentResult r = experiment.Run(Method::kMaroon);
    std::cout << "  theta=" << FormatDouble(theta, 3) << "  "
              << r.ToString() << "\n";
  }
}

void PrintMuPrimeSweep(const Dataset& dataset) {
  std::cout << "\nmu' sweep (theta default):\n";
  for (double mu_prime : {0.02, 0.1, 0.2, 0.4, 0.8}) {
    ExperimentOptions options = BenchExperimentOptions();
    options.maroon.cluster.mu_prime = mu_prime;
    Experiment experiment(&dataset, options);
    experiment.Prepare();
    const ExperimentResult r = experiment.Run(Method::kMaroon);
    std::cout << "  mu'=" << FormatDouble(mu_prime, 2) << "  " << r.ToString()
              << "\n";
  }
}

void BM_MaroonThetaSweep(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ExperimentOptions options = BenchExperimentOptions();
  options.max_eval_entities = 10;
  options.maroon.matcher.theta = static_cast<double>(state.range(0)) / 1000.0;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.Run(Method::kMaroon).f1);
  }
}
BENCHMARK(BM_MaroonThetaSweep)->Arg(5)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintHeader(
      "Ablation: threshold sensitivity (full MAROON, Recruitment)");
  const maroon::Dataset dataset = maroon::GenerateRecruitmentDataset(
      maroon::bench::BenchRecruitmentOptions());
  maroon::bench::PrintThetaSweep(dataset);
  maroon::bench::PrintMuPrimeSweep(dataset);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
