// Reproduces Figure 3: affiliation transition probabilities over time,
// learnt from the DBLP corpus, with affiliations classified into
// university / industry categories (and identity within a category).
//
// Paper shapes to reproduce:
//   * "same university" starts high and trends down over time;
//   * "different universities" (univ -> another univ) rises with time and
//     stays above "university -> industry";
//   * "industry -> university" is low early and grows late in a career.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/string_util.h"
#include "transition/transition_model.h"

namespace maroon::bench {
namespace {

/// The six Figure-3 series.
enum class Series {
  kSameCompany,
  kSameUniversity,
  kUnivToDifferentUniv,
  kUnivToIndustry,
  kCompanyToDifferentCompany,
  kIndustryToUniv,
};

const char* SeriesName(Series s) {
  switch (s) {
    case Series::kSameCompany:
      return "Same Company";
    case Series::kSameUniversity:
      return "Same University";
    case Series::kUnivToDifferentUniv:
      return "Different Universities";
    case Series::kUnivToIndustry:
      return "Univ. to Industry";
    case Series::kCompanyToDifferentCompany:
      return "Different Companies";
    case Series::kIndustryToUniv:
      return "Industry to Univ.";
  }
  return "?";
}

void PrintFigure3() {
  PrintHeader("Figure 3: transition probability for Affiliation (DBLP)");
  const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());

  ProfileSet profiles;
  for (const auto& [id, target] : corpus.dataset.targets()) {
    profiles.push_back(target.ground_truth);
  }
  // Train at organization granularity; classify entries via the taxonomy.
  const TransitionModel model =
      TransitionModel::Train(profiles, {kAttrAffiliation});
  const TableValueMapper& category = *corpus.affiliation_category_mapper;

  std::cout << std::left << std::setw(4) << "dt";
  for (Series s :
       {Series::kSameCompany, Series::kSameUniversity,
        Series::kUnivToDifferentUniv, Series::kUnivToIndustry,
        Series::kCompanyToDifferentCompany, Series::kIndustryToUniv}) {
    std::cout << std::setw(24) << SeriesName(s);
  }
  std::cout << "\n";

  for (int64_t dt = 1; dt <= 16; ++dt) {
    const TransitionTable* table = model.table(kAttrAffiliation, dt);
    if (table == nullptr) continue;
    // Aggregate counts per series, normalized by the origin-category mass.
    std::map<Series, int64_t> counts;
    int64_t from_univ = 0, from_industry = 0;
    for (const auto& [from, to, count] : table->Entries()) {
      const bool from_u = category.Map(kAttrAffiliation, from) == "university";
      const bool to_u = category.Map(kAttrAffiliation, to) == "university";
      (from_u ? from_univ : from_industry) += count;
      if (from == to) {
        counts[from_u ? Series::kSameUniversity : Series::kSameCompany] +=
            count;
      } else if (from_u && to_u) {
        counts[Series::kUnivToDifferentUniv] += count;
      } else if (from_u && !to_u) {
        counts[Series::kUnivToIndustry] += count;
      } else if (!from_u && !to_u) {
        counts[Series::kCompanyToDifferentCompany] += count;
      } else {
        counts[Series::kIndustryToUniv] += count;
      }
    }
    const auto prob = [&](Series s, int64_t denominator) {
      return denominator == 0 ? 0.0
                              : static_cast<double>(counts[s]) /
                                    static_cast<double>(denominator);
    };
    std::cout << std::left << std::setw(4) << dt;
    std::cout << std::setw(24)
              << FormatDouble(prob(Series::kSameCompany, from_industry), 3);
    std::cout << std::setw(24)
              << FormatDouble(prob(Series::kSameUniversity, from_univ), 3);
    std::cout << std::setw(24)
              << FormatDouble(prob(Series::kUnivToDifferentUniv, from_univ),
                              3);
    std::cout << std::setw(24)
              << FormatDouble(prob(Series::kUnivToIndustry, from_univ), 3);
    std::cout << std::setw(24)
              << FormatDouble(
                     prob(Series::kCompanyToDifferentCompany, from_industry),
                     3);
    std::cout << std::setw(24)
              << FormatDouble(prob(Series::kIndustryToUniv, from_industry),
                              3);
    std::cout << "\n";
  }
}

void BM_TrainTransitionModelDblp(benchmark::State& state) {
  const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());
  ProfileSet profiles;
  for (const auto& [id, target] : corpus.dataset.targets()) {
    profiles.push_back(target.ground_truth);
  }
  for (auto _ : state) {
    TransitionModel model =
        TransitionModel::Train(profiles, {kAttrAffiliation, kAttrCoauthors});
    benchmark::DoNotOptimize(model.MaxLifespan(kAttrAffiliation));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(profiles.size()));
}
BENCHMARK(BM_TrainTransitionModelDblp);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
