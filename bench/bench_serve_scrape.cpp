// Scrape-latency study (ours): what a Prometheus scrape of the live ops
// plane costs at full registry width. Populates the global MetricsRegistry
// with the series a long-running `maroon_cli serve` process carries
// (stream counters, per-record and per-entity latency histograms, build
// info), then measures
//   - mode "render":  PrometheusTextFromGlobal() — snapshot + text
//     serialization, the work /metrics does in-process;
//   - mode "http":    a full GET /metrics against an in-process OpsServer
//     over a loopback socket — what a real scraper observes.
// Exact p50/p99 over the per-iteration samples feed the serve_scrape rows
// of BENCH_runtime.json, gated by maroon_benchdiff like every other row.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "net/http_client.h"
#include "obs/latency_histogram.h"
#include "obs/metrics.h"
#include "obs/ops_server.h"
#include "obs/prometheus.h"

namespace maroon::bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Fills the global registry with the series mix of a serving process:
/// the stream/link counters, a handful of gauges, and latency histograms
/// dense enough that every scrape renders the full bucket ladder.
void PopulateRegistry() {
  obs::MetricsRegistry::SetEnabled(true);
  obs::RegisterBuildMetrics();
  const char* counters[] = {
      "maroon.stream.applied",     "maroon.stream.rejected",
      "maroon.stream.shed",        "maroon.stream.retries",
      "maroon.stream.snapshots",   "maroon.stream.resumed_skips",
      "maroon.phase1.clusters_formed", "maroon.phase2.evidence_updates",
      "maroon.validation.issues",  "maroon.ops.scrapes",
  };
  int64_t base = 1;
  for (const char* name : counters) {
    MAROON_COUNTER(name)->Add(base);
    base += 37;
  }
  MAROON_GAUGE("maroon.stream.queue_depth")->Set(12);
  MAROON_GAUGE("maroon.store.entities")->Set(4096);
  const char* histograms[] = {
      "maroon.stream.record_seconds", "maroon.link.entity_seconds",
      "maroon.ops.scrape_seconds",    "maroon.phase1.partition_seconds",
  };
  for (const char* name : histograms) {
    obs::LatencyHistogram* h = MAROON_LATENCY(name);
    for (int i = 0; i < 10000; ++i) {
      h->Record(1e-5 * (1 + i % 997));
    }
  }
}

struct ScrapeResult {
  double p50_ms = 0;
  double p99_ms = 0;
  double bytes = 0;
  int iterations = 0;
};

ScrapeResult Percentiles(std::vector<double>* samples_s, double bytes) {
  std::sort(samples_s->begin(), samples_s->end());
  ScrapeResult result;
  result.p50_ms = obs::PercentileOfSorted(*samples_s, 0.50) * 1e3;
  result.p99_ms = obs::PercentileOfSorted(*samples_s, 0.99) * 1e3;
  result.bytes = bytes;
  result.iterations = static_cast<int>(samples_s->size());
  return result;
}

ScrapeResult RunRenderStudy(int iterations) {
  std::vector<double> samples_s;
  samples_s.reserve(static_cast<size_t>(iterations));
  size_t bytes = 0;
  for (int i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const std::string text = obs::PrometheusTextFromGlobal();
    samples_s.push_back(SecondsSince(start));
    bytes = text.size();
    MAROON_CHECK(!text.empty()) << "empty exposition from a full registry";
  }
  return Percentiles(&samples_s, static_cast<double>(bytes));
}

ScrapeResult RunHttpStudy(int iterations) {
  obs::OpsServerOptions options;
  options.http.port = 0;
  auto server = obs::OpsServer::Start(std::move(options));
  MAROON_CHECK(server.ok()) << server.status();
  const int port = (*server)->port();

  std::vector<double> samples_s;
  samples_s.reserve(static_cast<size_t>(iterations));
  size_t bytes = 0;
  for (int i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto response = net::HttpGet("127.0.0.1", port, "/metrics");
    samples_s.push_back(SecondsSince(start));
    MAROON_CHECK(response.ok()) << response.status();
    MAROON_CHECK(response->status == 200) << response->status;
    bytes = response->body.size();
  }
  (*server)->Stop();
  return Percentiles(&samples_s, static_cast<double>(bytes));
}

void EmitScrapeRow(const char* mode, const ScrapeResult& r) {
  EmitBenchRow("serve_scrape", {{"mode", mode}},
               {{"iterations", static_cast<double>(r.iterations)},
                {"p50_ms", r.p50_ms},
                {"p99_ms", r.p99_ms},
                {"bytes", r.bytes}});
}

void RunScrapeStudy() {
  PrintHeader("Serve scrape: /metrics render + serve latency");
  PopulateRegistry();
  const int iterations = 200 * Scale();

  const ScrapeResult render = RunRenderStudy(iterations);
  const ScrapeResult http = RunHttpStudy(iterations);

  std::cout << "mode     iters  p50_ms   p99_ms   bytes\n";
  const auto print = [](const char* mode, const ScrapeResult& r) {
    std::cout << "  " << mode << "  " << r.iterations << "  "
              << FormatDouble(r.p50_ms, 4) << "  "
              << FormatDouble(r.p99_ms, 4) << "  " << r.bytes << "\n";
  };
  print("render", render);
  print("http  ", http);

  EmitScrapeRow("render", render);
  EmitScrapeRow("http", http);
}

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  maroon::bench::RunScrapeStudy();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
