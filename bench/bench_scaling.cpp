// Scaling study (ours): end-to-end MAROON cost as the corpus grows — an
// engineering complement to the paper's fixed-size Figure 7. Reports
// per-entity linkage latency and total wall time over increasing entity
// counts, plus training-time growth for the transition model.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "matching/batch_linker.h"
#include "matching/maroon.h"
#include "obs/latency_histogram.h"

namespace maroon::bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// FNV-1a over the batch assignment map, truncated to 53 bits so the hash
/// survives the JSON double round-trip exactly. Identical hashes across
/// thread counts prove the sweep timed the same computation.
double AssignmentHash(const BatchLinkResult& result) {
  uint64_t hash = 14695981039346656037ull;
  const auto mix_byte = [&hash](unsigned char byte) {
    hash = (hash ^ byte) * 1099511628211ull;
  };
  for (const auto& [record, entity] : result.assignment) {
    for (int shift = 0; shift < 32; shift += 8) {
      mix_byte(static_cast<unsigned char>(record >> shift));
    }
    for (const char c : entity) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0xff);
  }
  return static_cast<double>(hash & ((uint64_t{1} << 53) - 1));
}

/// Thread sweep on the paper-sized DBLP corpus: the whole parallel surface
/// (sharded training, parallel evaluation, batch linking) at 1/2/4/8
/// threads. The committed baseline records wall times from the CI host —
/// speedups there reflect that host's core count, not the code's ceiling —
/// plus a result hash that must be identical at every width.
void PrintThreadSweep() {
  PrintHeader("Thread sweep: MAROON end-to-end vs threads (DBLP)");
  const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());
  std::vector<EntityId> targets;
  for (const auto& [id, target] : corpus.dataset.targets()) {
    targets.push_back(id);
  }
  std::cout << "threads  train_s  eval_s  batch_s  total_s  result_hash\n";
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool::SetDefaultThreadCount(threads);

    const auto train_start = std::chrono::steady_clock::now();
    Experiment experiment(&corpus.dataset, BenchExperimentOptions());
    experiment.Prepare();
    const double train_s = SecondsSince(train_start);

    const auto eval_start = std::chrono::steady_clock::now();
    const ExperimentResult r = experiment.Run(Method::kMaroon);
    const double eval_s = SecondsSince(eval_start);

    MaroonOptions maroon_options;
    maroon_options.matcher.single_valued_attributes =
        corpus.dataset.attributes();
    const Maroon maroon(&experiment.transition_model(),
                        &experiment.freshness_model(),
                        &experiment.similarity(), corpus.dataset.attributes(),
                        maroon_options);
    const auto batch_start = std::chrono::steady_clock::now();
    const BatchLinkResult batch =
        BatchLinker(&maroon).LinkAll(corpus.dataset, targets);
    const double batch_s = SecondsSince(batch_start);

    const double hash = AssignmentHash(batch);
    const double total_s = train_s + eval_s + batch_s;
    std::cout << "  " << threads << "      " << FormatDouble(train_s, 3)
              << "    " << FormatDouble(eval_s, 3) << "   "
              << FormatDouble(batch_s, 3) << "    "
              << FormatDouble(total_s, 3) << "    "
              << FormatDouble(hash, 0) << "\n";
    EmitBenchRow("thread_sweep", {{"corpus", "dblp"}, {"method", "MAROON"}},
                 {{"threads", static_cast<double>(threads)},
                  {"train_wall_s", train_s},
                  {"eval_wall_s", eval_s},
                  {"batch_wall_s", batch_s},
                  {"total_wall_s", total_s},
                  {"result_hash", hash},
                  {"entities", static_cast<double>(targets.size())}});
    benchmark::DoNotOptimize(r.f1);
  }
  ThreadPool::SetDefaultThreadCount(1);
}

void PrintScaling() {
  PrintHeader("Scaling: MAROON cost vs corpus size (Recruitment)");
  std::cout << "entities  records  train_s  link_total_s  per_entity_ms  "
               "p50_ms  p95_ms  p99_ms  p999_ms\n";
  for (size_t entities : {100, 300, 900}) {
    RecruitmentOptions data_options;
    data_options.seed = 2015;
    data_options.num_entities = entities;
    data_options.num_names = entities / 3;
    const Dataset dataset = GenerateRecruitmentDataset(data_options);

    ExperimentOptions options;
    options.max_eval_entities = 40;
    Experiment experiment(&dataset, options);
    const auto train_start = std::chrono::steady_clock::now();
    experiment.Prepare();
    const double train_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      train_start)
            .count();
    const ExperimentResult r = experiment.Run(Method::kMaroon);
    const double per_entity_ms =
        1000.0 * r.total_seconds() /
        static_cast<double>(r.entities_evaluated);
    // Tail latency from the exact per-entity samples (not the histogram
    // estimate): the scaling story is mean AND tail, since one slow name
    // cluster can dominate the wall clock.
    std::vector<double> latencies = r.per_entity_link_seconds;
    std::sort(latencies.begin(), latencies.end());
    const double p50_ms = 1e3 * obs::PercentileOfSorted(latencies, 0.50);
    const double p95_ms = 1e3 * obs::PercentileOfSorted(latencies, 0.95);
    const double p99_ms = 1e3 * obs::PercentileOfSorted(latencies, 0.99);
    const double p999_ms = 1e3 * obs::PercentileOfSorted(latencies, 0.999);
    std::cout << "  " << entities << "      " << dataset.NumRecords()
              << "    " << FormatDouble(train_seconds, 2) << "     "
              << FormatDouble(r.total_seconds(), 3) << "         "
              << FormatDouble(per_entity_ms, 2) << "        "
              << FormatDouble(p50_ms, 2) << "   " << FormatDouble(p95_ms, 2)
              << "   " << FormatDouble(p99_ms, 2) << "   "
              << FormatDouble(p999_ms, 2) << "\n";
    EmitBenchRow("scaling", {{"corpus", "recruitment"}, {"method", "MAROON"}},
                 {{"entities", static_cast<double>(entities)},
                  {"records", static_cast<double>(dataset.NumRecords())},
                  {"threads",
                   static_cast<double>(ThreadPool::DefaultThreadCount())},
                  {"train_s", train_seconds},
                  {"link_total_s", r.total_seconds()},
                  {"per_entity_ms", per_entity_ms},
                  {"per_entity_p50_ms", p50_ms},
                  {"per_entity_p95_ms", p95_ms},
                  {"per_entity_p99_ms", p99_ms},
                  {"per_entity_p999_ms", p999_ms}});
  }
}

void BM_EndToEnd(benchmark::State& state) {
  RecruitmentOptions data_options;
  data_options.seed = 2015;
  data_options.num_entities = static_cast<size_t>(state.range(0));
  data_options.num_names = data_options.num_entities / 3;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);
  ExperimentOptions options;
  options.max_eval_entities = 20;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.Run(Method::kMaroon).f1);
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_EndToEnd)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintScaling();
  maroon::bench::PrintThreadSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
