// Scaling study (ours): end-to-end MAROON cost as the corpus grows — an
// engineering complement to the paper's fixed-size Figure 7. Reports
// per-entity linkage latency and total wall time over increasing entity
// counts, plus training-time growth for the transition model.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

namespace maroon::bench {
namespace {

void PrintScaling() {
  PrintHeader("Scaling: MAROON cost vs corpus size (Recruitment)");
  std::cout << "entities  records  train_s  link_total_s  per_entity_ms\n";
  for (size_t entities : {100, 300, 900}) {
    RecruitmentOptions data_options;
    data_options.seed = 2015;
    data_options.num_entities = entities;
    data_options.num_names = entities / 3;
    const Dataset dataset = GenerateRecruitmentDataset(data_options);

    ExperimentOptions options;
    options.max_eval_entities = 40;
    Experiment experiment(&dataset, options);
    const auto train_start = std::chrono::steady_clock::now();
    experiment.Prepare();
    const double train_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      train_start)
            .count();
    const ExperimentResult r = experiment.Run(Method::kMaroon);
    const double per_entity_ms =
        1000.0 * r.total_seconds() /
        static_cast<double>(r.entities_evaluated);
    std::cout << "  " << entities << "      " << dataset.NumRecords()
              << "    " << FormatDouble(train_seconds, 2) << "     "
              << FormatDouble(r.total_seconds(), 3) << "         "
              << FormatDouble(per_entity_ms, 2) << "\n";
    EmitBenchRow("scaling", {{"corpus", "recruitment"}, {"method", "MAROON"}},
                 {{"entities", static_cast<double>(entities)},
                  {"records", static_cast<double>(dataset.NumRecords())},
                  {"train_s", train_seconds},
                  {"link_total_s", r.total_seconds()},
                  {"per_entity_ms", per_entity_ms}});
  }
}

void BM_EndToEnd(benchmark::State& state) {
  RecruitmentOptions data_options;
  data_options.seed = 2015;
  data_options.num_entities = static_cast<size_t>(state.range(0));
  data_options.num_names = data_options.num_entities / 3;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);
  ExperimentOptions options;
  options.max_eval_entities = 20;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.Run(Method::kMaroon).f1);
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_EndToEnd)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
