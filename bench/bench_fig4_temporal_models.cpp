// Reproduces Figure 4: temporal-model comparison — MAROON_TR (the transition
// model) vs MUTA (the global recurrence model), both under the same AFDS
// clustering, on both datasets.
//
// Paper shapes to reproduce: MAROON_TR beats MUTA on precision and recall on
// the Recruitment data (the paper reports a >=50% margin); the gap narrows
// on DBLP, where ~50% of entities never change affiliation.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"

namespace maroon::bench {
namespace {

void PrintFigure4() {
  PrintHeader("Figure 4: MAROON_TR vs MUTA (both under AFDS clustering)");

  {
    std::cout << "(a) Recruitment data\n";
    const Dataset dataset =
        GenerateRecruitmentDataset(BenchRecruitmentOptions());
    Experiment experiment(&dataset, BenchExperimentOptions());
    experiment.Prepare();
    RunAndPrint(experiment, {Method::kAfdsTransition, Method::kAfdsMuta,
                             Method::kAfdsDecay, Method::kStatic});
  }
  {
    std::cout << "\n(b) DBLP data\n";
    const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());
    ExperimentOptions options = BenchExperimentOptions();
    Experiment experiment(&corpus.dataset, options);
    experiment.Prepare();
    RunAndPrint(experiment, {Method::kAfdsTransition, Method::kAfdsMuta,
                             Method::kAfdsDecay, Method::kStatic});
  }
  std::cout << "\n(AFDS+Transition is the paper's MAROON_TR; MUTA+AFDS is "
               "the paper's MUTA. DECAY+AFDS [ref. 18] and non-temporal "
               "Static linkage are additional baselines.)\n";
}

void BM_LinkAfdsTransitionPerEntity(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ExperimentOptions options = BenchExperimentOptions();
  options.max_eval_entities = 10;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    ExperimentResult r = experiment.Run(Method::kAfdsTransition);
    benchmark::DoNotOptimize(r.f1);
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_LinkAfdsTransitionPerEntity)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
