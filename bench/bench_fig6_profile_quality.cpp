// Reproduces Figure 6: profile-augmentation quality — full MAROON vs
// MUTA+AFDS — measured as fact-level Accuracy and Completeness against the
// ground-truth profiles.
//
// Paper shapes to reproduce: MAROON beats MUTA+AFDS on both metrics with a
// large margin on Recruitment (paper: +45% accuracy, +36% completeness) and
// a smaller one on DBLP.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

namespace maroon::bench {
namespace {

void PrintFigure6() {
  PrintHeader("Figure 6: profile augmentation quality");

  {
    std::cout << "(a) Recruitment data\n";
    const Dataset dataset =
        GenerateRecruitmentDataset(BenchRecruitmentOptions());
    Experiment experiment(&dataset, BenchExperimentOptions());
    experiment.Prepare();
    const auto results =
        RunAndPrint(experiment, {Method::kMaroon, Method::kAfdsMuta});
    if (results[1].accuracy > 0 && results[1].completeness > 0) {
      std::cout << "  margin: accuracy +"
                << FormatDouble((results[0].accuracy / results[1].accuracy -
                                 1.0) * 100.0, 0)
                << "%, completeness +"
                << FormatDouble((results[0].completeness /
                                     results[1].completeness - 1.0) * 100.0,
                                0)
                << "% (paper: +45% / +36%)\n";
    }
  }
  {
    std::cout << "\n(b) DBLP data\n";
    const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());
    Experiment experiment(&corpus.dataset, BenchExperimentOptions());
    experiment.Prepare();
    RunAndPrint(experiment, {Method::kMaroon, Method::kAfdsMuta});
  }
}

void BM_ProfileQualityEvaluation(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ExperimentOptions options = BenchExperimentOptions();
  options.max_eval_entities = 10;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    ExperimentResult r = experiment.Run(Method::kMaroon);
    benchmark::DoNotOptimize(r.completeness);
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_ProfileQualityEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
