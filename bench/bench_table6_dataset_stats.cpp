// Reproduces Table 6: Recruitment dataset statistics — records per source,
// records matched to target entities, covered period, and source freshness.
//
// Paper shape to reproduce: the LinkedIn-like source has the most records
// and freshness 1.00; the Google+-like and Twitter-like sources are smaller
// with freshness ~0.86 / ~0.90; the Twitter-like source only starts in 2006.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "freshness/freshness_model.h"

namespace maroon::bench {
namespace {

void PrintTable6() {
  PrintHeader("Table 6: Recruitment dataset statistics");
  const Dataset dataset = GenerateRecruitmentDataset(BenchRecruitmentOptions());

  std::vector<EntityId> all_entities;
  for (const auto& [id, t] : dataset.targets()) all_entities.push_back(id);
  const FreshnessModel freshness =
      FreshnessModel::Train(dataset, all_entities);
  const auto& attributes = dataset.attributes();

  int64_t total_lifespan = 0;
  for (const auto& [id, t] : dataset.targets()) {
    total_lifespan += t.ground_truth.MaxLifespan();
  }
  std::cout << "#Target entities = " << dataset.targets().size()
            << ", Avg. lifespan = "
            << FormatDouble(static_cast<double>(total_lifespan) /
                                static_cast<double>(dataset.targets().size()),
                            1)
            << " years\n\n";
  std::cout << std::left << std::setw(12) << "Source" << std::right
            << std::setw(10) << "#Records" << std::setw(10) << "#Matched"
            << std::setw(14) << "Period" << std::setw(12) << "Freshness"
            << "\n";

  size_t total_records = 0;
  size_t total_matched = 0;
  for (const DataSource& source : dataset.sources()) {
    size_t count = 0, matched = 0;
    TimePoint lo = 0, hi = 0;
    bool seen = false;
    for (const TemporalRecord& r : dataset.records()) {
      if (r.source() != source.id) continue;
      ++count;
      if (!dataset.LabelOf(r.id()).empty()) ++matched;
      if (!seen) {
        lo = hi = r.timestamp();
        seen = true;
      } else {
        lo = std::min(lo, r.timestamp());
        hi = std::max(hi, r.timestamp());
      }
    }
    total_records += count;
    total_matched += matched;
    std::cout << std::left << std::setw(12) << source.name << std::right
              << std::setw(10) << count << std::setw(10) << matched
              << std::setw(8) << lo << "-" << hi << std::setw(12)
              << FormatDouble(freshness.FreshnessScore(source.id, attributes),
                              2)
              << "\n";
  }
  std::cout << std::left << std::setw(12) << "Total" << std::right
            << std::setw(10) << total_records << std::setw(10)
            << total_matched << "\n";
}

void BM_GenerateRecruitmentDataset(benchmark::State& state) {
  RecruitmentOptions options = BenchRecruitmentOptions();
  options.num_entities = static_cast<size_t>(state.range(0));
  options.num_names = options.num_entities / 3;
  for (auto _ : state) {
    Dataset d = GenerateRecruitmentDataset(options);
    benchmark::DoNotOptimize(d.NumRecords());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(options.num_entities));
}
BENCHMARK(BM_GenerateRecruitmentDataset)->Arg(100)->Arg(300)->Arg(1000);

void BM_TrainFreshnessModel(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  std::vector<EntityId> entities;
  for (const auto& [id, t] : dataset.targets()) entities.push_back(id);
  for (auto _ : state) {
    FreshnessModel model = FreshnessModel::Train(dataset, entities);
    benchmark::DoNotOptimize(model.ObservationCount(0, kAttrTitle));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.NumRecords()));
}
BENCHMARK(BM_TrainFreshnessModel);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintTable6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
