// Ablation: what does source-awareness buy? Runs full MAROON with the
// freshness model enabled vs disabled (every source treated as fresh, every
// delay probability 1 — Phase I degenerates to plain PARTITION clustering).
//
// Expected shape: disabling freshness hurts precision and profile accuracy
// on the Recruitment corpus, whose social sources lag on work attributes.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"

namespace maroon::bench {
namespace {

void PrintAblation() {
  PrintHeader("Ablation: source freshness on/off (full MAROON, Recruitment)");
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());

  {
    std::cout << "freshness ON:\n";
    Experiment experiment(&dataset, BenchExperimentOptions());
    experiment.Prepare();
    RunAndPrint(experiment, {Method::kMaroon});
  }
  {
    std::cout << "freshness OFF:\n";
    ExperimentOptions options = BenchExperimentOptions();
    options.maroon.cluster.use_source_freshness = false;
    Experiment experiment(&dataset, options);
    experiment.Prepare();
    RunAndPrint(experiment, {Method::kMaroon});
  }
}

void BM_MaroonFreshnessOn(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ExperimentOptions options = BenchExperimentOptions();
  options.max_eval_entities = 10;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.Run(Method::kMaroon).f1);
  }
}
BENCHMARK(BM_MaroonFreshnessOn)->Unit(benchmark::kMillisecond);

void BM_MaroonFreshnessOff(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ExperimentOptions options = BenchExperimentOptions();
  options.max_eval_entities = 10;
  options.maroon.cluster.use_source_freshness = false;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.Run(Method::kMaroon).f1);
  }
}
BENCHMARK(BM_MaroonFreshnessOff)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
