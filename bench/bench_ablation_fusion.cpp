// Ablation: cluster-signature fusion strategies (the paper adopts majority
// vote and defers alternatives to the data-fusion literature, §4.3.1).
// Compares majority vote, latest-wins, and reliability-weighted voting on
// the Recruitment corpus with injected publication errors.
//
// Expected shape: identical on clean data; under noise, reliability-weighted
// voting removes fabricated values from signatures and recovers some
// precision/accuracy.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "clustering/fusion.h"
#include "common/string_util.h"
#include "eval/metrics.h"
#include "matching/maroon.h"

namespace maroon::bench {
namespace {

ExperimentResult RunWithFusion(const Dataset& dataset,
                               const FusionStrategy* fusion,
                               const ReliabilityModel* reliability) {
  ExperimentOptions options = BenchExperimentOptions();
  Experiment experiment(&dataset, options);
  experiment.Prepare();

  // Hand-rolled evaluation loop so the fusion strategy can be attached.
  MaroonOptions mo = options.maroon;
  mo.matcher.single_valued_attributes = dataset.attributes();
  Maroon maroon(&experiment.transition_model(), &experiment.freshness_model(),
                &experiment.similarity(), dataset.attributes(), mo);
  maroon.SetFusionStrategy(fusion);
  if (reliability != nullptr) maroon.SetReliabilityModel(reliability);

  ExperimentResult result;
  MeanAccumulator precision, recall, f1, accuracy, completeness;
  size_t evaluated = 0;
  for (const EntityId& id : experiment.test_entities()) {
    if (evaluated >= BenchEvalEntities()) break;
    auto target = dataset.target(id);
    if (!target.ok()) continue;
    std::vector<const TemporalRecord*> candidates;
    for (RecordId rid : dataset.CandidatesFor(id)) {
      candidates.push_back(&dataset.record(rid));
    }
    if (candidates.empty()) continue;
    const LinkResult link = maroon.Link((*target)->clean_profile, candidates);
    const PrecisionRecall pr = ComputePrecisionRecall(
        link.match.matched_records, dataset.TrueMatchesOf(id));
    precision.Add(pr.precision);
    recall.Add(pr.recall);
    f1.Add(pr.F1());
    const ProfileQuality q = CompareProfiles(
        link.match.augmented_profile, (*target)->ground_truth,
        dataset.attributes());
    accuracy.Add(q.accuracy);
    completeness.Add(q.completeness);
    ++evaluated;
  }
  result.precision = precision.Mean();
  result.recall = recall.Mean();
  result.f1 = f1.Mean();
  result.accuracy = accuracy.Mean();
  result.completeness = completeness.Mean();
  result.entities_evaluated = evaluated;
  return result;
}

void PrintRow(const std::string& label, const ExperimentResult& r) {
  std::cout << "  " << label << ": P=" << FormatDouble(r.precision, 3)
            << " R=" << FormatDouble(r.recall, 3)
            << " F1=" << FormatDouble(r.f1, 3)
            << " Acc=" << FormatDouble(r.accuracy, 3)
            << " Comp=" << FormatDouble(r.completeness, 3) << " (n="
            << r.entities_evaluated << ")\n";
}

void PrintAblation() {
  PrintHeader("Ablation: cluster fusion strategies under publication noise");
  for (double error_rate : {0.0, 0.25}) {
    RecruitmentOptions data_options = BenchRecruitmentOptions();
    data_options.social_source_error_rate = error_rate;
    const Dataset dataset = GenerateRecruitmentDataset(data_options);

    std::vector<EntityId> entities;
    for (const auto& [id, t] : dataset.targets()) entities.push_back(id);
    const ReliabilityModel reliability =
        ReliabilityModel::Train(dataset, entities);

    std::cout << "error rate " << FormatDouble(error_rate, 2) << ":\n";
    MajorityVoteFusion majority;
    LatestWinsFusion latest;
    ReliabilityWeightedFusion weighted(&reliability);
    PrintRow("majority vote        ",
             RunWithFusion(dataset, &majority, nullptr));
    PrintRow("latest wins          ", RunWithFusion(dataset, &latest, nullptr));
    PrintRow("reliability weighted ",
             RunWithFusion(dataset, &weighted, &reliability));
  }
}

void BM_FusionStrategies(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  MajorityVoteFusion majority;
  LatestWinsFusion latest;
  const FusionStrategy* strategy =
      state.range(0) == 0 ? static_cast<const FusionStrategy*>(&majority)
                          : &latest;
  std::map<Value, int64_t> counts{{"A", 3}, {"B", 2}, {"C", 2}};
  std::vector<TemporalRecord> records;
  for (RecordId id = 0; id < 7; ++id) {
    TemporalRecord r(id, "X", static_cast<TimePoint>(2000 + id), id % 3);
    r.SetValue("T", MakeValueSet({id < 3 ? "A" : (id < 5 ? "B" : "C")}));
    records.push_back(std::move(r));
  }
  std::vector<const TemporalRecord*> pointers;
  for (const auto& r : records) pointers.push_back(&r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->Fuse("T", counts, pointers).size());
  }
}
BENCHMARK(BM_FusionStrategies)->Arg(0)->Arg(1);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
