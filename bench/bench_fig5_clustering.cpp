// Reproduces Figure 5: clustering-method comparison — MAROON_SC (the
// source-aware Phase I + Phase II matcher) vs AFDS, both using the
// transition model.
//
// Paper shapes to reproduce: MAROON_SC improves precision and recall over
// AFDS on Recruitment (source delays produce wrong AFDS cluster intervals);
// on the single-source DBLP corpus the gap is smaller but MAROON_SC still
// does not lose.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"

namespace maroon::bench {
namespace {

void PrintFigure5() {
  PrintHeader(
      "Figure 5: MAROON_SC vs AFDS (both using the transition model)");

  {
    std::cout << "(a) Recruitment data\n";
    const Dataset dataset =
        GenerateRecruitmentDataset(BenchRecruitmentOptions());
    Experiment experiment(&dataset, BenchExperimentOptions());
    experiment.Prepare();
    RunAndPrint(experiment, {Method::kMaroon, Method::kAfdsTransition});
  }
  {
    std::cout << "\n(b) DBLP data\n";
    const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());
    Experiment experiment(&corpus.dataset, BenchExperimentOptions());
    experiment.Prepare();
    RunAndPrint(experiment, {Method::kMaroon, Method::kAfdsTransition});
  }
  std::cout << "\n(MAROON is the paper's MAROON_SC; AFDS+Transition is the "
               "paper's AFDS.)\n";
}

void BM_MaroonLinkPerEntity(benchmark::State& state) {
  const Dataset dataset =
      GenerateRecruitmentDataset(BenchRecruitmentOptions());
  ExperimentOptions options = BenchExperimentOptions();
  options.max_eval_entities = 10;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    ExperimentResult r = experiment.Run(Method::kMaroon);
    benchmark::DoNotOptimize(r.f1);
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_MaroonLinkPerEntity)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintFigure5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
