// Ablation (paper §6 future work): source reliability under publication
// noise. The social sources of the Recruitment corpus are made to publish
// erroneous values at a configurable rate; MAROON runs with and without the
// reliability extension that down-weights unreliable sources in Eq. 11.
//
// Expected shape: without noise the extension is a no-op; as the error rate
// grows, reliability weighting recovers part of the lost precision/accuracy.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

namespace maroon::bench {
namespace {

void PrintAblation() {
  PrintHeader("Ablation: source reliability under publication noise");
  for (double error_rate : {0.0, 0.1, 0.25}) {
    RecruitmentOptions data_options = BenchRecruitmentOptions();
    data_options.social_source_error_rate = error_rate;
    const Dataset dataset = GenerateRecruitmentDataset(data_options);
    std::cout << "error rate " << FormatDouble(error_rate, 2) << ":\n";
    for (bool use_reliability : {false, true}) {
      ExperimentOptions options = BenchExperimentOptions();
      options.use_source_reliability = use_reliability;
      Experiment experiment(&dataset, options);
      experiment.Prepare();
      std::cout << (use_reliability ? "  reliability ON : "
                                    : "  reliability OFF: ")
                << experiment.Run(Method::kMaroon).ToString() << "\n";
    }
  }
}

void BM_MaroonWithReliability(benchmark::State& state) {
  RecruitmentOptions data_options = BenchRecruitmentOptions();
  data_options.social_source_error_rate = 0.2;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);
  ExperimentOptions options = BenchExperimentOptions();
  options.max_eval_entities = 10;
  options.use_source_reliability = state.range(0) == 1;
  Experiment experiment(&dataset, options);
  experiment.Prepare();
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.Run(Method::kMaroon).f1);
  }
}
BENCHMARK(BM_MaroonWithReliability)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
