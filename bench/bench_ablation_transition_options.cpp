// Ablation: transition-model design choices —
//   * low-frequency value fallback (min_value_frequency, §4.1.2 Discussion);
//   * value generalization via a taxonomy mapper (title-level vs raw values
//     is moot for titles, so we generalize DBLP affiliations instead);
//   * Eq. 13's literal form vs counting Δt = 0 terms.
//
// Expected shapes: moderate frequency filtering is harmless or mildly
// helpful; category generalization trades per-value discrimination for
// robustness on sparse attributes.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

namespace maroon::bench {
namespace {

void PrintSweep() {
  PrintHeader("Ablation: transition-model options (full MAROON)");

  {
    const Dataset dataset =
        GenerateRecruitmentDataset(BenchRecruitmentOptions());
    std::cout << "min_value_frequency sweep (Recruitment):\n";
    for (int64_t freq : {1, 3, 10, 50}) {
      ExperimentOptions options = BenchExperimentOptions();
      options.transition.min_value_frequency = freq;
      Experiment experiment(&dataset, options);
      experiment.Prepare();
      std::cout << "  min_freq=" << freq << "  "
                << experiment.Run(Method::kMaroon).ToString() << "\n";
    }

    std::cout << "\nEq. 13 zero-delta terms (Recruitment):\n";
    for (bool include : {false, true}) {
      ExperimentOptions options = BenchExperimentOptions();
      options.transition.include_zero_delta_terms = include;
      Experiment experiment(&dataset, options);
      experiment.Prepare();
      std::cout << "  include_zero_delta=" << (include ? "true " : "false")
                << "  " << experiment.Run(Method::kMaroon).ToString() << "\n";
    }
  }

  {
    const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());
    std::cout << "\nAffiliation generalization (DBLP):\n";
    {
      Experiment experiment(&corpus.dataset, BenchExperimentOptions());
      experiment.Prepare();
      std::cout << "  raw organizations      "
                << experiment.Run(Method::kMaroon).ToString() << "\n";
    }
    {
      ExperimentOptions options = BenchExperimentOptions();
      options.transition.mapper = corpus.affiliation_category_mapper;
      Experiment experiment(&corpus.dataset, options);
      experiment.Prepare();
      std::cout << "  university/industry    "
                << experiment.Run(Method::kMaroon).ToString() << "\n";
    }
  }
}

void BM_TrainWithMapper(benchmark::State& state) {
  const DblpCorpus corpus = GenerateDblpCorpus(BenchDblpOptions());
  ProfileSet profiles;
  for (const auto& [id, target] : corpus.dataset.targets()) {
    profiles.push_back(target.ground_truth);
  }
  TransitionModelOptions options;
  if (state.range(0) == 1) options.mapper = corpus.affiliation_category_mapper;
  for (auto _ : state) {
    TransitionModel model =
        TransitionModel::Train(profiles, {kAttrAffiliation}, options);
    benchmark::DoNotOptimize(model.MaxLifespan(kAttrAffiliation));
  }
}
BENCHMARK(BM_TrainWithMapper)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maroon::bench

int main(int argc, char** argv) {
  maroon::bench::PrintSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
