#!/bin/sh
# Smoke benchmark runner: collects pipeline timing rows and observability
# sample artifacts into a reviewable baseline.
#
# Runs bench_fig7_runtime and bench_scaling in the pinned smoke
# configuration (seed 2015, MAROON_BENCH_SCALE=1, google-benchmark loops
# filtered out), gathers their EmitBenchRow JSONL rows, and measures the
# instrumentation overhead of the metrics layer by timing bench_fig7_runtime
# with MAROON_METRICS=off versus on (tracing stays off in both runs; a
# warm-up run is discarded first). It then links one entity of a freshly
# generated clean Recruitment corpus through maroon_cli with
# --metrics-out/--trace-out/--metrics-prom-out/--metrics-jsonl to produce
# sample observability artifacts, and fails if the quarantine or
# degenerate-score counters are nonzero — clean seed data must link cleanly.
#
# Every EmitBenchRow JSONL row must carry the per-row
# "schema": "maroon_bench_runtime_v1" tag, and every awk extraction must
# come back numeric — a silent format drift fails the run instead of
# producing a hollow baseline. When OUT_FILE already exists, the previous
# baseline is saved first and maroon_benchdiff gates the fresh run against
# it (threshold MAROON_BENCHDIFF_THRESHOLD_PCT, default 100 — i.e. a 2x
# slowdown fails; timings on shared runners are noisy, so the default is
# deliberately loose).
#
# Usage: tools/run_bench.sh [BUILD_DIR] [OUT_FILE] [ARTIFACTS_DIR]
#   BUILD_DIR      cmake build tree, default ./build
#   OUT_FILE       baseline to write, default ./BENCH_runtime.json
#   ARTIFACTS_DIR  smoke_metrics.json / smoke_trace.json / smoke_metrics.prom
#                  / smoke_metrics.jsonl, default ./bench_artifacts
#
# BENCH_runtime.json schema ("maroon_bench_runtime_v1"):
# {
#   "schema": "maroon_bench_runtime_v1",
#   "config": {"bench_scale": 1, "seed": 2015, "benchmark_loops": false},
#   "rows": [   # every row also carries "schema": "maroon_bench_runtime_v1"
#     {"bench": "fig7_runtime", "corpus": "recruitment"|"dblp",
#      "method": "MAROON"|"MUTA+AFDS",
#      "phase1_s": N, "phase2_s": N, "total_s": N, "entities": N},
#     {"bench": "scaling", "corpus": "recruitment", "method": "MAROON",
#      "entities": N, "records": N, "threads": N, "train_s": N,
#      "link_total_s": N, "per_entity_ms": N, "per_entity_p50_ms": N,
#      "per_entity_p95_ms": N, "per_entity_p99_ms": N,
#      "per_entity_p999_ms": N},
#     {"bench": "thread_sweep", "corpus": "dblp", "method": "MAROON",
#      "threads": 1|2|4|8, "train_wall_s": N, "eval_wall_s": N,
#      "batch_wall_s": N, "total_wall_s": N, "result_hash": N,
#      "entities": N},
#     {"bench": "replay_durability", "corpus": "recruitment",
#      "mode": "no_wal"|"wal_buffered"|"wal_synced",
#      "records": N, "wall_s": N, "records_per_s": N},
#     {"bench": "replay_durability", "corpus": "recruitment",
#      "mode": "snapshot", "entities": N, "snapshot_write_s": N,
#      "snapshot_bytes": N},
#     {"bench": "serve_scrape", "mode": "render"|"http",
#      "iterations": N, "p50_ms": N, "p99_ms": N, "bytes": N},
#     ...
#   ],
#   "overhead": {
#     "bench": "fig7_runtime",
#     "metrics_off_total_s": N,   # sum of fig7 total_s, MAROON_METRICS=off
#     "metrics_on_total_s": N,    # same with metrics on (tracing off)
#     "overhead_pct": N           # 100 * (on - off) / off; target <= 3
#   },
#   "thread_sweep": {
#     "bench": "thread_sweep",
#     "host_cores": N,            # nproc on the machine that ran the sweep
#     "total_wall_s_1t": N,       # thread_sweep total at --threads=1
#     "total_wall_s_8t": N,       # same at --threads=8
#     "speedup_8v1": N            # 1t / 8t; bounded by host_cores
#   }
# }
#
# The sweep hard-fails if the four thread_sweep result_hash values differ:
# every thread count must compute the identical batch assignment.
#
# Timings are machine-dependent: the committed baseline is for spotting
# gross regressions and schema drift, not a calibrated benchmark.

set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_runtime.json}"
ARTIFACTS="${3:-bench_artifacts}"

FIG7="$BUILD_DIR/bench/bench_fig7_runtime"
SCALING="$BUILD_DIR/bench/bench_scaling"
DURABILITY="$BUILD_DIR/bench/bench_replay_durability"
SERVE_SCRAPE="$BUILD_DIR/bench/bench_serve_scrape"
CLI="$BUILD_DIR/tools/maroon_cli"
BENCHDIFF="$BUILD_DIR/tools/maroon_benchdiff"
for binary in "$FIG7" "$SCALING" "$DURABILITY" "$SERVE_SCRAPE" "$CLI" "$BENCHDIFF"; do
  if [ ! -x "$binary" ]; then
    echo "run_bench.sh: missing $binary (build the bench and tools targets first)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT INT TERM
mkdir -p "$ARTIFACTS"

# Pin the smoke configuration: seed 2015 is compiled into bench_common.h,
# scale is forced to 1 here, and the google-benchmark loops are skipped so
# only the deterministic figure/scaling passes run.
export MAROON_BENCH_SCALE=1
FILTER="--benchmark_filter=__skip_all__"

# Sums total_s over the rows of one bench in a JSONL file.
sum_total_s() {
  awk -v bench="$2" '
    index($0, "\"bench\": \"" bench "\"") == 0 { next }
    {
      i = index($0, "\"total_s\": ")
      if (i == 0) next
      rest = substr($0, i + 11)
      sub(/[,}].*/, "", rest)
      sum += rest + 0
    }
    END { printf "%.6f", sum }
  ' "$1"
}

# Fails unless every row in a JSONL file carries the per-row schema tag —
# the guard against a bench emitting rows an older/newer consumer would
# silently misread.
require_schema_rows() {
  bad="$(grep -cv '"schema": "maroon_bench_runtime_v1"' "$1" || true)"
  total="$(wc -l < "$1")"
  if [ "$total" -eq 0 ]; then
    echo "FAIL: $1 is empty — benches emitted no rows" >&2
    exit 1
  fi
  if [ "$bad" -ne 0 ]; then
    echo "FAIL: $bad of $total row(s) in $1 lack \"schema\": \"maroon_bench_runtime_v1\":" >&2
    grep -v '"schema": "maroon_bench_runtime_v1"' "$1" | head -5 >&2
    exit 1
  fi
}

# Fails when an awk extraction came back empty or non-numeric instead of
# letting a zero flow into the document.
require_number() {
  case "$2" in
    *[0-9]*) ;;
    *)
      echo "FAIL: $1 extraction came up empty or non-numeric ('$2')" >&2
      exit 1
      ;;
  esac
}

# Extracts one counter from a metrics snapshot JSON (0 when absent).
counter_value() {
  value="$(awk -v name="$2" '
    {
      pat = "\"" name "\": "
      i = index($0, pat)
      if (i == 0) next
      rest = substr($0, i + length(pat))
      sub(/[^0-9].*/, "", rest)
      print rest
      exit
    }
  ' "$1")"
  echo "${value:-0}"
}

echo "== bench_fig7_runtime: warm-up (discarded) =="
MAROON_METRICS=off "$FIG7" "$FILTER" > /dev/null

echo "== bench_fig7_runtime: metrics off =="
MAROON_METRICS=off MAROON_BENCH_JSON="$WORK/off.jsonl" \
  "$FIG7" "$FILTER" > /dev/null
require_schema_rows "$WORK/off.jsonl"
OFF_TOTAL="$(sum_total_s "$WORK/off.jsonl" fig7_runtime)"
require_number metrics_off_total_s "$OFF_TOTAL"

echo "== bench_fig7_runtime: metrics on =="
MAROON_BENCH_JSON="$WORK/rows.jsonl" "$FIG7" "$FILTER" > /dev/null
ON_TOTAL="$(sum_total_s "$WORK/rows.jsonl" fig7_runtime)"
require_number metrics_on_total_s "$ON_TOTAL"

echo "== bench_scaling =="
MAROON_BENCH_JSON="$WORK/rows.jsonl" "$SCALING" "$FILTER" > /dev/null
require_schema_rows "$WORK/rows.jsonl"

echo "== bench_replay_durability =="
MAROON_BENCH_JSON="$WORK/rows.jsonl" "$DURABILITY" "$FILTER" > /dev/null
require_schema_rows "$WORK/rows.jsonl"
# The durable default must actually have streamed: a zero throughput row
# means the WAL path silently did no work.
WAL_RPS="$(awk '
  index($0, "\"bench\": \"replay_durability\"") == 0 { next }
  index($0, "\"mode\": \"wal_synced\"") == 0 { next }
  {
    i = index($0, "\"records_per_s\": ")
    rest = substr($0, i + 17); sub(/[,}].*/, "", rest); print rest + 0
  }' "$WORK/rows.jsonl")"
require_number replay_durability_records_per_s "$WAL_RPS"

echo "== bench_serve_scrape =="
MAROON_BENCH_JSON="$WORK/rows.jsonl" "$SERVE_SCRAPE" "$FILTER" > /dev/null
require_schema_rows "$WORK/rows.jsonl"
# The render row must carry a real tail latency: a zero p99 means the
# scrape path measured nothing.
SCRAPE_P99="$(awk '
  index($0, "\"bench\": \"serve_scrape\"") == 0 { next }
  index($0, "\"mode\": \"render\"") == 0 { next }
  {
    i = index($0, "\"p99_ms\": ")
    rest = substr($0, i + 10); sub(/[,}].*/, "", rest); print rest + 0
  }' "$WORK/rows.jsonl")"
require_number serve_scrape_p99_ms "$SCRAPE_P99"

OVERHEAD_PCT="$(awk -v off="$OFF_TOTAL" -v on="$ON_TOTAL" 'BEGIN {
  if (off <= 0) { printf "0"; exit }
  printf "%.2f", 100.0 * (on - off) / off
}')"
echo "metrics off ${OFF_TOTAL}s, on ${ON_TOTAL}s, overhead ${OVERHEAD_PCT}%"

# Thread-sweep equality gate: the four widths must produce the identical
# batch assignment (result_hash), or the parallel path is nondeterministic.
extract_field() {
  awk -v field="$2" '
    index($0, "\"bench\": \"thread_sweep\"") == 0 { next }
    {
      pat = "\"" field "\": "
      i = index($0, pat)
      if (i == 0) next
      rest = substr($0, i + length(pat))
      sub(/[,}].*/, "", rest)
      print rest + 0
    }
  ' "$1"
}
HASHES="$(extract_field "$WORK/rows.jsonl" result_hash | sort -u | wc -l)"
if [ "$HASHES" -ne 1 ]; then
  echo "FAIL: thread_sweep result_hash differs across thread counts" >&2
  extract_field "$WORK/rows.jsonl" result_hash >&2
  exit 1
fi
SWEEP_1T="$(awk '
  index($0, "\"bench\": \"thread_sweep\"") == 0 { next }
  index($0, "\"threads\": 1,") == 0 { next }
  {
    i = index($0, "\"total_wall_s\": ")
    rest = substr($0, i + 16); sub(/[,}].*/, "", rest); print rest + 0
  }' "$WORK/rows.jsonl")"
SWEEP_8T="$(awk '
  index($0, "\"bench\": \"thread_sweep\"") == 0 { next }
  index($0, "\"threads\": 8,") == 0 { next }
  {
    i = index($0, "\"total_wall_s\": ")
    rest = substr($0, i + 16); sub(/[,}].*/, "", rest); print rest + 0
  }' "$WORK/rows.jsonl")"
require_number thread_sweep_total_wall_s_1t "$SWEEP_1T"
require_number thread_sweep_total_wall_s_8t "$SWEEP_8T"
HOST_CORES="$(nproc 2>/dev/null || echo 1)"
SPEEDUP="$(awk -v one="$SWEEP_1T" -v eight="$SWEEP_8T" 'BEGIN {
  if (eight <= 0) { printf "0"; exit }
  printf "%.2f", one / eight
}')"
echo "thread sweep: 1t ${SWEEP_1T}s, 8t ${SWEEP_8T}s, speedup ${SPEEDUP}x (host cores: ${HOST_CORES})"

# Keep the previous baseline (if any) so maroon_benchdiff can gate the
# fresh run against it after the overwrite below.
PREVIOUS=""
if [ -f "$OUT" ]; then
  PREVIOUS="$WORK/previous_baseline.json"
  cp "$OUT" "$PREVIOUS"
fi

{
  printf '{\n'
  printf '  "schema": "maroon_bench_runtime_v1",\n'
  printf '  "config": {"bench_scale": 1, "seed": 2015, "benchmark_loops": false},\n'
  printf '  "rows": [\n'
  awk 'NR > 1 { printf ",\n" } { printf "    %s", $0 } END { printf "\n" }' \
    "$WORK/rows.jsonl"
  printf '  ],\n'
  printf '  "overhead": {"bench": "fig7_runtime", "metrics_off_total_s": %s, "metrics_on_total_s": %s, "overhead_pct": %s},\n' \
    "$OFF_TOTAL" "$ON_TOTAL" "$OVERHEAD_PCT"
  printf '  "thread_sweep": {"bench": "thread_sweep", "host_cores": %s, "total_wall_s_1t": %s, "total_wall_s_8t": %s, "speedup_8v1": %s}\n' \
    "$HOST_CORES" "$SWEEP_1T" "$SWEEP_8T" "$SPEEDUP"
  printf '}\n'
} > "$OUT"
echo "wrote $OUT"

if [ -n "$PREVIOUS" ]; then
  echo "== maroon_benchdiff: fresh run vs previous baseline =="
  # set -e makes a regression (exit 1) or IO/schema error (exit 2) fatal.
  "$BENCHDIFF" --baseline="$PREVIOUS" --current="$OUT" \
    --threshold-pct="${MAROON_BENCHDIFF_THRESHOLD_PCT:-100}"
else
  echo "no previous $OUT; skipping benchdiff gate"
fi

echo "== observability smoke: clean corpus link =="
"$CLI" generate --dataset=recruitment --out="$WORK/data" \
  --entities=60 --seed=2015 > /dev/null
"$CLI" link --data="$WORK/data" --entity=entity_0 \
  --metrics-out="$ARTIFACTS/smoke_metrics.json" \
  --trace-out="$ARTIFACTS/smoke_trace.json" \
  --metrics-prom-out="$ARTIFACTS/smoke_metrics.prom" \
  --metrics-jsonl="$ARTIFACTS/smoke_metrics.jsonl" \
  --metrics-every-s=0.5 > /dev/null
if ! grep -q '"traceEvents"' "$ARTIFACTS/smoke_trace.json"; then
  echo "FAIL: $ARTIFACTS/smoke_trace.json has no traceEvents" >&2
  exit 1
fi
if ! grep -q '# TYPE maroon_link_entity_seconds histogram' \
    "$ARTIFACTS/smoke_metrics.prom"; then
  echo "FAIL: $ARTIFACTS/smoke_metrics.prom lacks the per-entity latency histogram" >&2
  exit 1
fi
if ! grep -q '"maroon_metrics_snapshot_v1"' "$ARTIFACTS/smoke_metrics.jsonl"; then
  echo "FAIL: $ARTIFACTS/smoke_metrics.jsonl has no snapshot rows" >&2
  exit 1
fi

status=0
for name in maroon.validation.quarantined_records \
            maroon.validation.quarantined_rows \
            maroon.phase2.degenerate_scores; do
  value="$(counter_value "$ARTIFACTS/smoke_metrics.json" "$name")"
  if [ "$value" -ne 0 ]; then
    echo "FAIL: $name = $value on clean seed data" >&2
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  exit "$status"
fi

echo "wrote $ARTIFACTS/smoke_metrics.json, smoke_trace.json, smoke_metrics.prom, smoke_metrics.jsonl"
echo "run_bench.sh: OK"
