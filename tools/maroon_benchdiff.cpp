// maroon_benchdiff — the perf-regression gate over bench baselines.
//
// Compares two `maroon_bench_runtime_v1` files (the documents
// tools/run_bench.sh writes) row by row and metric by metric, prints the
// per-metric deltas, and exits nonzero when a timing metric regressed past
// the threshold or coverage shrank. run_bench.sh and the CI bench-smoke job
// run it to diff a fresh run against the committed BENCH_runtime.json.
//
// Usage:
//   maroon_benchdiff --baseline=FILE --current=FILE
//                    [--threshold-pct=P] [--min-seconds=S] [--json]
//
//   --baseline=FILE      the reference baseline (e.g. BENCH_runtime.json)
//   --current=FILE       the freshly produced baseline to judge
//   --threshold-pct=P    allowed growth per timing metric, percent
//                        (default 25; 100 allows a 2x slowdown)
//   --min-seconds=S      noise floor: timings where both sides stay under
//                        S seconds are reported but not gated
//                        (default 0.005)
//   --json               machine-readable report (maroon_benchdiff_v1)
//                        instead of the table
//
// Exit codes: 0 no regressions, 1 regressions or coverage/schema errors,
// 2 usage or IO error.

#include <iostream>

#include "common/flags.h"
#include "eval/benchdiff.h"
#include "maroon/version_info.h"

namespace maroon {
namespace {

int Usage() {
  std::cerr << "usage: maroon_benchdiff --baseline=FILE --current=FILE\n"
               "                        [--threshold-pct=P] "
               "[--min-seconds=S] [--json]\n"
               "  Diffs two maroon_bench_runtime_v1 baselines and fails on "
               "timing regressions.\n";
  return 2;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.GetBoolOr("version", false)) {
    std::cout << "maroon_benchdiff " << MAROON_VERSION << " ("
              << MAROON_GIT_DESCRIBE << ")\n";
    return 0;
  }
  if (flags.GetBoolOr("help", false)) return Usage();
  for (const std::string& name : flags.FlagNames()) {
    if (name != "baseline" && name != "current" && name != "threshold-pct" &&
        name != "min-seconds" && name != "json" && name != "version" &&
        name != "help") {
      std::cerr << "maroon_benchdiff: unknown flag --" << name << "\n";
      return Usage();
    }
  }
  const std::string baseline = flags.GetStringOr("baseline", "");
  const std::string current = flags.GetStringOr("current", "");
  if (baseline.empty() || current.empty() || !flags.positional().empty()) {
    return Usage();
  }

  BenchDiffOptions options;
  options.threshold_pct =
      flags.GetDoubleOr("threshold-pct", options.threshold_pct);
  options.min_seconds = flags.GetDoubleOr("min-seconds", options.min_seconds);
  if (options.threshold_pct < 0.0 || options.min_seconds < 0.0) {
    std::cerr << "maroon_benchdiff: thresholds must be non-negative\n";
    return Usage();
  }

  const Result<BenchDiffReport> report =
      DiffBenchFiles(baseline, current, options);
  if (!report.ok()) {
    std::cerr << "maroon_benchdiff: error: " << report.status() << "\n";
    return 2;
  }
  if (flags.GetBoolOr("json", false)) {
    std::cout << report->ToJson() << "\n";
  } else {
    std::cout << report->ToText();
  }
  return report->ok() ? 0 : 1;
}

}  // namespace
}  // namespace maroon

int main(int argc, char** argv) { return maroon::Main(argc, argv); }
