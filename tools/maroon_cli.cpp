// The MAROON command-line tool: generate corpora, inspect statistics,
// examine learnt transitions, link individual entities, and run the full
// evaluation — all against CSV datasets on disk.
//
// Usage:
//   maroon_cli generate --dataset=recruitment --out=DIR [--entities=N]
//              [--names=N] [--seed=S] [--error-rate=E]
//   maroon_cli generate --dataset=dblp --out=DIR [--entities=N] [--names=N]
//   maroon_cli stats --data=DIR [--lenient]
//   maroon_cli transitions --data=DIR --attribute=Title [--from=Manager]
//              [--delta=5]
//   maroon_cli link --data=DIR --entity=ID [--lenient]
//   maroon_cli evaluate --data=DIR [--method=maroon|afds_transition|
//              muta_afds|decay_afds|static|all] [--eval-entities=N]
//              [--lenient]
//   maroon_cli validate --data=DIR [--policy=strict|quarantine|repair]
//              [--out=DIR]
//   maroon_cli inject --data=DIR [--seed=S] [--drop-cell=R]
//              [--invert-interval=R] [--duplicate-id=R] [--unknown-source=R]
//              [--shuffle-timestamp=R] [--mangle-separator=R]
//   maroon_cli replay --data=DIR --wal-dir=DIR [--snapshot-every=N]
//              [--max-queue=N] [--max-entities=N] [--sync-every=N]
//              [--state-out=FILE] [--lenient]
//   maroon_cli recover --wal-dir=DIR [--state-out=FILE]
//   maroon_cli serve --data=DIR --wal-dir=DIR [--port=N] [--bind=ADDR]
//              [--port-file=FILE] [--throttle-us=N] [--duration-s=S]
//              [--snapshot-every=N] [--max-queue=N] [--max-entities=N]
//              [--sync-every=N] [--state-out=FILE] [--lenient]
//   maroon_cli promlint FILE
//   maroon_cli --list-crash-points
//
// Data-loading commands accept --lenient: malformed rows and semantically
// invalid records are quarantined (with counters printed) instead of
// aborting the load.
//
// Any command accepts --threads=N to fan the training / linking /
// evaluation loops over N pool workers (default: MAROON_THREADS, else 1);
// outputs are identical at every N.
//
// Observability (any command):
//   --metrics-out=FILE  write the metrics registry snapshot as JSON
//   --metrics-prom-out=FILE
//                       write the snapshot in Prometheus text exposition
//                       format (scrape-compatible, format 0.0.4)
//   --metrics-jsonl=FILE
//                       append periodic maroon_metrics_snapshot_v1 rows to
//                       FILE while the command runs (a final row is always
//                       written on exit)
//   --metrics-every-s=S period for --metrics-jsonl, seconds (default 10)
//   --trace-out=FILE    enable span tracing, write Chrome trace_event JSON
//                       (loadable in chrome://tracing / ui.perfetto.dev)
//   --run-report[=FILE] print a human-readable run report; with =FILE,
//                       write the maroon_run_report_v1 JSON instead

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/failpoint.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/dataset_io.h"
#include "core/profile_algebra.h"
#include "core/profile_wal.h"
#include "core/validation.h"
#include "datagen/dblp_generator.h"
#include "datagen/fault_injector.h"
#include "datagen/recruitment_generator.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "eval/sweep.h"
#include "freshness/freshness_model.h"
#include "maroon/version_info.h"
#include "matching/stream_linker.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/metrics_snapshotter.h"
#include "obs/ops_server.h"
#include "obs/prometheus.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "transition/transition_io.h"

namespace maroon {
namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

int Usage() {
  std::cerr
      << "usage: maroon_cli "
         "<generate|stats|transitions|link|evaluate|sweep|validate|inject|"
         "replay|recover|serve|promlint> [--flags]\n"
         "  generate    --dataset=recruitment|dblp --out=DIR [--entities=N]\n"
         "              [--names=N] [--seed=S] [--error-rate=E]\n"
         "  stats       --data=DIR [--lenient]\n"
         "  transitions --data=DIR --attribute=A [--from=V] [--delta=N]\n"
         "  link        --data=DIR --entity=ID [--lenient]\n"
         "  evaluate    --data=DIR [--method=...|all] [--eval-entities=N]\n"
         "              [--report=FILE.md] [--reliability] [--lenient]\n"
         "  sweep       --data=DIR [--thetas=0.01,0.1,...] "
         "[--eval-entities=N]\n"
         "  validate    --data=DIR [--policy=strict|quarantine|repair]\n"
         "              [--out=DIR]   (exit 1 when issues are found)\n"
         "  inject      --data=DIR [--seed=S] [--drop-cell=R]\n"
         "              [--invert-interval=R] [--duplicate-id=R]\n"
         "              [--unknown-source=R] [--shuffle-timestamp=R]\n"
         "              [--mangle-separator=R]   (corrupts DIR in place)\n"
         "  replay      --data=DIR --wal-dir=DIR [--snapshot-every=N]\n"
         "              [--max-queue=N] [--max-entities=N] [--sync-every=N]\n"
         "              [--state-out=FILE] [--lenient]\n"
         "              stream the corpus through the durable linker: every\n"
         "              record is WAL-appended before it mutates the store,\n"
         "              snapshots land in WAL-DIR/snapshots\n"
         "  recover     --wal-dir=DIR [--state-out=FILE]\n"
         "              rebuild the store from the newest valid snapshot\n"
         "              plus the WAL tail and print its state hash\n"
         "  serve       --data=DIR --wal-dir=DIR [--port=N] [--bind=ADDR]\n"
         "              [--port-file=FILE] [--throttle-us=N]\n"
         "              [--duration-s=S] [--snapshot-every=N] "
         "[--max-queue=N]\n"
         "              [--max-entities=N] [--sync-every=N] "
         "[--state-out=FILE]\n"
         "              stream the corpus through the durable linker while\n"
         "              serving the live ops plane (/metrics /varz /healthz\n"
         "              /readyz /statusz /tracez); runs until SIGTERM, or\n"
         "              --duration-s elapses (--port=0 picks a free port,\n"
         "              written to --port-file when given)\n"
         "  promlint    FILE\n"
         "              lint a Prometheus text exposition file (exit 1 on\n"
         "              violations)\n"
         "\n"
         "  --list-crash-points  print every registered failpoint and exit\n"
         "\n"
         "  --lenient quarantines malformed rows/records instead of failing\n"
         "  the load, printing quarantine counters.\n"
         "\n"
         "  Global flags (any command):\n"
         "  --threads=N          worker threads for training, linking, and\n"
         "                       evaluation (default: MAROON_THREADS or 1;\n"
         "                       results are identical at every N)\n"
         "\n"
         "  Observability flags (any command):\n"
         "  --metrics-out=FILE   write the metrics snapshot as JSON\n"
         "  --metrics-prom-out=FILE  write it as Prometheus text format\n"
         "  --metrics-jsonl=FILE append periodic snapshot rows while "
         "running\n"
         "  --metrics-every-s=S  snapshot period for --metrics-jsonl "
         "(default 10)\n"
         "  --trace-out=FILE     enable tracing, write Chrome trace JSON\n"
         "  --run-report[=FILE]  print a run report (JSON when =FILE)\n";
  return 2;
}

int RunGenerate(const FlagParser& flags) {
  auto out = flags.GetString("out");
  if (!out.ok()) return Fail(out.status());
  std::error_code ec;
  std::filesystem::create_directories(*out, ec);
  if (ec) {
    return Fail(Status::IOError("cannot create directory " + *out + ": " +
                                ec.message()));
  }

  const std::string kind = flags.GetStringOr("dataset", "recruitment");
  Dataset dataset;
  if (kind == "recruitment") {
    RecruitmentOptions options;
    options.seed = static_cast<uint64_t>(flags.GetIntOr("seed", 42));
    options.num_entities =
        static_cast<size_t>(flags.GetIntOr("entities", 500));
    options.num_names = static_cast<size_t>(
        flags.GetIntOr("names", static_cast<int64_t>(options.num_entities) / 3));
    options.social_source_error_rate = flags.GetDoubleOr("error-rate", 0.0);
    dataset = GenerateRecruitmentDataset(options);
  } else if (kind == "dblp") {
    DblpOptions options;
    options.seed = static_cast<uint64_t>(flags.GetIntOr("seed", 7));
    options.num_entities =
        static_cast<size_t>(flags.GetIntOr("entities", 216));
    options.num_names = static_cast<size_t>(flags.GetIntOr("names", 21));
    dataset = std::move(GenerateDblpCorpus(options).dataset);
  } else {
    return Fail(Status::InvalidArgument("unknown --dataset '" + kind + "'"));
  }

  const Status status = WriteDatasetCsv(dataset, *out);
  if (!status.ok()) return Fail(status);
  std::cout << "wrote " << dataset.NumRecords() << " records, "
            << dataset.targets().size() << " targets to " << *out << "\n";
  return 0;
}

Result<Dataset> LoadData(const FlagParser& flags) {
  MAROON_ASSIGN_OR_RETURN(std::string dir, flags.GetString("data"));
  if (!flags.GetBoolOr("lenient", false)) return ReadDatasetCsv(dir);

  CsvLoadOptions options;
  options.validation.policy = RepairPolicy::kQuarantine;
  options.infer_plausible_window = true;
  ValidationReport report;
  MAROON_ASSIGN_OR_RETURN(Dataset dataset,
                          ReadDatasetCsv(dir, options, &report));
  if (!report.clean()) {
    std::cout << "lenient load: quarantined " << report.TotalQuarantined()
              << " record(s)/row(s), " << report.issues.size()
              << " issue(s) flagged, " << report.repairs_applied
              << " repair(s) applied\n";
  }
  return dataset;
}

int RunValidate(const FlagParser& flags) {
  auto dir = flags.GetString("data");
  if (!dir.ok()) return Fail(dir.status());
  auto policy = ParseRepairPolicy(flags.GetStringOr("policy", "quarantine"));
  if (!policy.ok()) return Fail(policy.status());

  CsvLoadOptions options;
  options.validation.policy = *policy;
  options.infer_plausible_window = true;
  ValidationReport report;
  auto dataset = ReadDatasetCsv(*dir, options, &report);
  if (!dataset.ok()) {
    // Strict policy fails on the first issue; surface whatever the report
    // gathered before the failure, then the status itself.
    if (!report.clean()) std::cout << report.ToString();
    return Fail(dataset.status());
  }
  std::cout << report.ToString();

  if (flags.Has("out")) {
    auto out = flags.GetString("out");
    if (!out.ok()) return Fail(out.status());
    std::error_code ec;
    std::filesystem::create_directories(*out, ec);
    if (ec) {
      return Fail(Status::IOError("cannot create directory " + *out + ": " +
                                  ec.message()));
    }
    const Status status = WriteDatasetCsv(*dataset, *out);
    if (!status.ok()) return Fail(status);
    std::cout << "wrote validated dataset (" << dataset->NumRecords()
              << " records) to " << *out << "\n";
  }
  return report.clean() ? 0 : 1;
}

int RunInject(const FlagParser& flags) {
  auto dir = flags.GetString("data");
  if (!dir.ok()) return Fail(dir.status());

  FaultInjectorOptions options;
  options.seed = static_cast<uint64_t>(flags.GetIntOr("seed", 99));
  options.drop_cell_rate = flags.GetDoubleOr("drop-cell", 0.0);
  options.invert_interval_rate = flags.GetDoubleOr("invert-interval", 0.0);
  options.duplicate_record_rate = flags.GetDoubleOr("duplicate-id", 0.0);
  options.unknown_source_rate = flags.GetDoubleOr("unknown-source", 0.0);
  options.shuffle_timestamp_rate = flags.GetDoubleOr("shuffle-timestamp", 0.0);
  options.mangle_separator_rate = flags.GetDoubleOr("mangle-separator", 0.0);

  FaultInjector injector(options);
  auto report = injector.CorruptDirectory(*dir);
  if (!report.ok()) return Fail(report.status());
  std::cout << report->ToString();
  return 0;
}

int RunStats(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  std::cout << dataset->StatisticsString();

  std::vector<EntityId> entities;
  for (const auto& [id, t] : dataset->targets()) entities.push_back(id);
  const FreshnessModel freshness = FreshnessModel::Train(*dataset, entities);
  std::cout << "\nSource freshness (mean Delay(0, s, A)):\n";
  for (const DataSource& s : dataset->sources()) {
    std::cout << "  " << s.name << ": "
              << FormatDouble(
                     freshness.FreshnessScore(s.id, dataset->attributes()), 2)
              << (freshness.IsFresh(s.id, dataset->attributes(), 0.9)
                      ? "  (fresh at mu=0.9)"
                      : "  (stale at mu=0.9)")
              << "\n";
  }
  return 0;
}

int RunTransitions(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  auto attribute = flags.GetString("attribute");
  if (!attribute.ok()) return Fail(attribute.status());

  ProfileSet profiles;
  for (const auto& [id, target] : dataset->targets()) {
    profiles.push_back(target.ground_truth);
  }
  const TransitionModel model = TransitionModel::Train(profiles, {*attribute});
  if (!model.HasAttribute(*attribute)) {
    return Fail(Status::NotFound("no profile data for attribute '" +
                                 *attribute + "'"));
  }
  if (flags.Has("export")) {
    auto path = flags.GetString("export");
    if (!path.ok()) return Fail(path.status());
    const Status status = WriteTransitionTablesCsv(model, *attribute, *path);
    if (!status.ok()) return Fail(status);
    std::cout << "exported transition tables for " << *attribute << " to "
              << *path << "\n";
    return 0;
  }

  const int64_t delta = flags.GetIntOr("delta", 5);
  const TransitionTable* table = model.table(*attribute, delta);
  if (table == nullptr) {
    return Fail(Status::NotFound("no transition table at delta " +
                                 std::to_string(delta)));
  }
  const std::string from_filter = flags.GetStringOr("from", "");
  std::cout << "transitions for " << *attribute << " at dt=" << delta
            << (from_filter.empty() ? "" : " from '" + from_filter + "'")
            << ":\n";
  size_t printed = 0;
  for (const auto& [from, to, count] : table->Entries()) {
    if (!from_filter.empty() && from != from_filter) continue;
    std::cout << "  " << from << " -> " << to << ": count " << count
              << ", Pr = "
              << FormatDouble(model.Probability(*attribute, from, to, delta),
                              3)
              << "\n";
    if (++printed >= 40 && from_filter.empty()) {
      std::cout << "  ... (" << table->NumEntries() - printed
                << " more entries)\n";
      break;
    }
  }
  return 0;
}

int RunLink(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  auto entity = flags.GetString("entity");
  if (!entity.ok()) return Fail(entity.status());
  auto target = dataset->target(*entity);
  if (!target.ok()) return Fail(target.status());

  ExperimentOptions options;
  Experiment experiment(&*dataset, options);
  experiment.Prepare();

  MaroonOptions maroon_options;
  maroon_options.matcher.single_valued_attributes = dataset->attributes();
  Maroon maroon(&experiment.transition_model(), &experiment.freshness_model(),
                &experiment.similarity(), dataset->attributes(),
                maroon_options);
  std::vector<const TemporalRecord*> candidates;
  for (RecordId id : dataset->CandidatesFor(*entity)) {
    candidates.push_back(&dataset->record(id));
  }
  const LinkResult result =
      maroon.Link((*target)->clean_profile, candidates);

  std::cout << "entity " << *entity << " (\""
            << (*target)->clean_profile.name() << "\"): "
            << candidates.size() << " candidates, "
            << result.match.matched_records.size() << " linked, "
            << result.num_clusters << " clusters\n\n";
  std::cout << "augmented profile:\n"
            << result.match.augmented_profile.ToString() << "\n\n"
            << RenderTimeline(result.match.augmented_profile) << "\n";
  const auto pr = ComputePrecisionRecall(result.match.matched_records,
                                         dataset->TrueMatchesOf(*entity));
  std::cout << "P=" << FormatDouble(pr.precision, 3)
            << " R=" << FormatDouble(pr.recall, 3) << "\n";
  return 0;
}

int RunEvaluate(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());

  ExperimentOptions options;
  options.max_eval_entities =
      static_cast<size_t>(flags.GetIntOr("eval-entities", 0));
  options.use_source_reliability = flags.GetBoolOr("reliability", false);

  if (flags.Has("report")) {
    auto path = flags.GetString("report");
    if (!path.ok()) return Fail(path.status());
    ReportOptions report_options;
    report_options.theta_sweep = {0.01, 0.05, 0.1, 0.2};
    const std::string report =
        GenerateComparisonReport(*dataset, options, report_options);
    const Status written = obs::WriteTextFile(*path, report);
    if (!written.ok()) return Fail(written);
    std::cout << "wrote evaluation report to " << *path << "\n";
    return 0;
  }

  Experiment experiment(&*dataset, options);
  experiment.Prepare();

  const std::string method = flags.GetStringOr("method", "all");
  const std::vector<std::pair<std::string, Method>> known = {
      {"maroon", Method::kMaroon},
      {"afds_transition", Method::kAfdsTransition},
      {"muta_afds", Method::kAfdsMuta},
      {"decay_afds", Method::kAfdsDecay},
      {"static", Method::kStatic},
  };
  bool ran = false;
  for (const auto& [name, m] : known) {
    if (method != "all" && method != name) continue;
    std::cout << experiment.Run(m).ToString() << "\n";
    ran = true;
  }
  if (!ran) {
    return Fail(Status::InvalidArgument("unknown --method '" + method + "'"));
  }
  return 0;
}

int RunSweep(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  ExperimentOptions options;
  options.max_eval_entities =
      static_cast<size_t>(flags.GetIntOr("eval-entities", 30));
  std::vector<double> thetas;
  for (const std::string& part :
       Split(flags.GetStringOr("thetas", "0.01,0.05,0.1,0.2,0.4"), ',')) {
    FlagParser one({"--v=" + std::string(StripWhitespace(part))});
    auto v = one.GetDouble("v");
    if (!v.ok()) return Fail(v.status());
    thetas.push_back(*v);
  }
  const SweepCurve curve = SweepTheta(*dataset, options, thetas);
  std::cout << curve.ToCsv();
  if (const SweepPoint* best = curve.BestByF1()) {
    std::cout << "# best theta by F1: " << FormatDouble(best->parameter, 3)
              << " (F1 " << FormatDouble(best->result.f1, 3) << ")\n";
  }
  return 0;
}

std::string HashHex(uint64_t hash) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

/// Builds StreamLinkerOptions from --wal-dir and friends; the WAL file and
/// snapshot directory both live under the one directory so `recover` can
/// find everything from the same flag.
Result<StreamLinkerOptions> StreamOptionsFromFlags(const FlagParser& flags) {
  MAROON_ASSIGN_OR_RETURN(std::string wal_dir, flags.GetString("wal-dir"));
  std::error_code ec;
  std::filesystem::create_directories(wal_dir + "/snapshots", ec);
  if (ec) {
    return Status::IOError("cannot create directory " + wal_dir +
                           "/snapshots: " + ec.message());
  }
  StreamLinkerOptions options;
  options.wal_path = wal_dir + "/profile.wal";
  options.snapshot_dir = wal_dir + "/snapshots";
  options.snapshot_every =
      static_cast<uint64_t>(flags.GetIntOr("snapshot-every", 0));
  options.max_queue = static_cast<size_t>(flags.GetIntOr("max-queue", 1024));
  options.max_store_entities =
      static_cast<size_t>(flags.GetIntOr("max-entities", 0));
  options.wal.sync_every = static_cast<int>(flags.GetIntOr("sync-every", 1));
  return options;
}

/// One parseable line per fact so the crash harness (and shell tests) can
/// grep e.g. `store_hash=` instead of scraping prose.
std::string DescribeStreamState(const StreamLinker& linker) {
  const StreamLinkerStats& stats = linker.stats();
  std::ostringstream os;
  os << "last_seq=" << linker.last_seq() << "\n"
     << "entities=" << linker.store().size() << "\n"
     << "store_hash=" << HashHex(HashProfileStore(linker.store())) << "\n"
     << "applied=" << stats.applied << "\n"
     << "recovered=" << stats.recovered << "\n"
     << "resumed_skips=" << stats.resumed_skips << "\n"
     << "rejected=" << stats.rejected << "\n"
     << "shed=" << stats.shed << "\n"
     << "retries=" << stats.retries << "\n"
     << "snapshots_written=" << stats.snapshots_written << "\n"
     << "snapshot_failures=" << stats.snapshot_failures << "\n";
  return os.str();
}

/// Prints the state and, with --state-out, also writes it to a file. Sink
/// failure is a command failure (exit nonzero), matching every other sink.
int EmitStreamState(const FlagParser& flags, const std::string& state) {
  std::cout << state;
  if (flags.Has("state-out")) {
    auto path = flags.GetString("state-out");
    if (!path.ok()) return Fail(path.status());
    const Status written = obs::WriteTextFile(*path, state);
    if (!written.ok()) return Fail(written);
  }
  return 0;
}

int RunReplay(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  auto options = StreamOptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());

  auto linker = StreamLinker::Open(*options);
  if (!linker.ok()) return Fail(linker.status());

  for (const TemporalRecord& record : dataset->records()) {
    Status submitted = linker->Submit(record);
    if (submitted.code() == StatusCode::kResourceExhausted) {
      // Backpressure: the admission queue is full. Drain it, then the same
      // record must fit.
      const Status drained = linker->Drain();
      if (!drained.ok()) return Fail(drained);
      submitted = linker->Submit(record);
    }
    if (submitted.code() == StatusCode::kInvalidArgument) {
      continue;  // degenerate record — counted under stats().rejected
    }
    if (!submitted.ok()) return Fail(submitted);
  }
  const Status closed = linker->Close();
  if (!closed.ok()) return Fail(closed);

  std::ostringstream summary;
  summary << "replay: streamed " << dataset->NumRecords()
          << " record(s) through " << options->wal_path << "\n"
          << DescribeStreamState(*linker);
  if (obs::MetricsRegistry::Enabled()) {
    const auto latency =
        MAROON_LATENCY("maroon.stream.record_seconds")->Snapshot();
    if (latency.count > 0) {
      summary << "record_latency_ms: p50="
              << FormatDouble(latency.P50() * 1e3, 3)
              << " p99=" << FormatDouble(latency.P99() * 1e3, 3)
              << " p999=" << FormatDouble(latency.P999() * 1e3, 3) << "\n";
    }
  }
  return EmitStreamState(flags, summary.str());
}

int RunRecover(const FlagParser& flags) {
  auto options = StreamOptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());

  // Open *is* recovery: newest valid snapshot + WAL tail replay. Close
  // writes no snapshot here because recovery applies nothing new.
  auto linker = StreamLinker::Open(*options);
  if (!linker.ok()) return Fail(linker.status());
  const std::string state =
      "recover: " + options->wal_path + "\n" + DescribeStreamState(*linker);
  const Status closed = linker->Close();
  if (!closed.ok()) return Fail(closed);
  return EmitStreamState(flags, state);
}

/// Set by the SIGTERM/SIGINT handler; the serve loops poll it.
volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void HandleShutdownSignal(int /*signum*/) {
  g_shutdown_requested = 1;
}

/// Submits one record to the linker and drains it, handling backpressure
/// the same way `replay` does. Per-record draining keeps the
/// maroon.stream.record_seconds latency live for scrapes.
Status ServeOneRecord(StreamLinker* linker, const TemporalRecord& record) {
  Status submitted = linker->Submit(record);
  if (submitted.code() == StatusCode::kResourceExhausted) {
    MAROON_RETURN_IF_ERROR(linker->Drain());
    submitted = linker->Submit(record);
  }
  if (submitted.code() == StatusCode::kInvalidArgument) {
    return Status::OK();  // degenerate record — counted under rejected
  }
  MAROON_RETURN_IF_ERROR(submitted);
  return linker->Drain();
}

int RunServe(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  auto options = StreamOptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());

  auto linker = StreamLinker::Open(*options);
  if (!linker.ok()) return Fail(linker.status());

  const std::string bind = flags.GetStringOr("bind", "127.0.0.1");
  const int64_t throttle_us = flags.GetIntOr("throttle-us", 0);
  const double duration_s = flags.GetDoubleOr("duration-s", 0.0);

  obs::OpsServerOptions ops_options;
  ops_options.http.bind_address = bind;
  ops_options.http.port = static_cast<int>(flags.GetIntOr("port", 0));
  ops_options.statusz_config = {
      {"command", "serve"},
      {"data", flags.GetStringOr("data", "")},
      {"wal", options->wal_path},
      {"snapshot_every", std::to_string(options->snapshot_every)},
      {"max_queue", std::to_string(options->max_queue)},
      {"max_entities", std::to_string(options->max_store_entities)},
      {"throttle_us", std::to_string(throttle_us)},
  };

  // The ring gives /tracez bounded memory for an indefinite run; full
  // tracing stays off unless --trace-out asked for it.
  obs::Tracer::SetRingEnabled(true);
  auto server = obs::OpsServer::Start(std::move(ops_options));
  if (!server.ok()) return Fail(server.status());

  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);

  std::cout << "serving ops plane on http://" << bind << ":"
            << (*server)->port() << "\n"
            << std::flush;
  if (flags.Has("port-file")) {
    const Status written =
        obs::WriteTextFile(flags.GetStringOr("port-file", ""),
                           std::to_string((*server)->port()) + "\n");
    if (!written.ok()) return Fail(written);
  }

  obs::HealthRegistry& health = obs::HealthRegistry::Global();
  linker->ReportHealth(&health);
  health.SetReady(true);

  const auto serve_start = std::chrono::steady_clock::now();
  const auto deadline_passed = [&serve_start, duration_s] {
    if (duration_s <= 0.0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         serve_start)
               .count() >= duration_s;
  };

  // Ingest: replay the corpus through the durable linker while scrapes run.
  // A non-transient failure (a latched WAL error) stops ingest but NOT the
  // ops plane — operators diagnose a broken-but-alive process through
  // /healthz, which now reports UNHEALTHY.
  bool ingest_failed = false;
  size_t streamed = 0;
  for (const TemporalRecord& record : dataset->records()) {
    if (g_shutdown_requested != 0 || deadline_passed()) break;
    const Status processed = ServeOneRecord(&linker.value(), record);
    if (!processed.ok()) {
      std::cerr << "ingest halted: " << processed << "\n";
      ingest_failed = true;
      break;
    }
    ++streamed;
    if (streamed % 64 == 0) linker->ReportHealth(&health);
    if (throttle_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(throttle_us));
    }
  }
  linker->ReportHealth(&health);
  if (!ingest_failed && g_shutdown_requested == 0) {
    const Status flushed = linker->Flush();
    if (!flushed.ok()) {
      std::cerr << "flush failed: " << flushed << "\n";
      ingest_failed = true;
      linker->ReportHealth(&health);
    }
  }
  std::cout << "ingest done: " << streamed << " record(s) streamed"
            << (ingest_failed ? " (halted on error)" : "") << "\n"
            << std::flush;

  // Serve until the operator says stop (or the test-oriented --duration-s
  // budget runs out).
  while (g_shutdown_requested == 0 && !deadline_passed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    linker->ReportHealth(&health);
  }

  health.SetReady(false);
  (*server)->Stop();
  const Status closed = linker->Close();
  if (!closed.ok() && !ingest_failed) return Fail(closed);

  std::ostringstream summary;
  summary << "serve: streamed " << streamed << " record(s) through "
          << options->wal_path << "\n"
          << DescribeStreamState(*linker);
  if (obs::MetricsRegistry::Enabled()) {
    const auto latency =
        MAROON_LATENCY("maroon.stream.record_seconds")->Snapshot();
    if (latency.count > 0) {
      summary << "record_latency_ms: p50="
              << FormatDouble(latency.P50() * 1e3, 3)
              << " p99=" << FormatDouble(latency.P99() * 1e3, 3)
              << " p999=" << FormatDouble(latency.P999() * 1e3, 3) << "\n";
    }
    const auto scrapes = MAROON_COUNTER("maroon.ops.scrapes")->value();
    summary << "scrapes=" << scrapes << "\n";
  }
  const int emitted = EmitStreamState(flags, summary.str());
  if (emitted != 0) return emitted;
  return ingest_failed ? 1 : 0;
}

int RunPromlint(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    std::cerr << "usage: maroon_cli promlint FILE\n";
    return 2;
  }
  const std::string& path = flags.positional()[1];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Fail(Status::IOError("cannot read " + path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::vector<std::string> problems =
      obs::PrometheusLint(buffer.str());
  for (const std::string& problem : problems) {
    std::cout << path << ": " << problem << "\n";
  }
  if (!problems.empty()) {
    std::cout << "promlint: " << problems.size() << " problem(s)\n";
    return 1;
  }
  std::cout << "promlint: clean\n";
  return 0;
}

int Dispatch(const FlagParser& flags, const std::string& command) {
  if (command == "generate") return RunGenerate(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "transitions") return RunTransitions(flags);
  if (command == "link") return RunLink(flags);
  if (command == "evaluate") return RunEvaluate(flags);
  if (command == "sweep") return RunSweep(flags);
  if (command == "validate") return RunValidate(flags);
  if (command == "inject") return RunInject(flags);
  if (command == "replay") return RunReplay(flags);
  if (command == "recover") return RunRecover(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "promlint") return RunPromlint(flags);
  return Usage();
}

/// Writes the requested observability artifacts after the command ran.
/// Export failures are reported but do not override the command's exit code
/// unless the command itself succeeded.
int ExportObservability(const FlagParser& flags, const std::string& command,
                        int code) {
  const auto write = [&code](const std::string& path,
                             const std::string& content) {
    const Status status = obs::WriteTextFile(path, content);
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      if (code == 0) code = 1;
    }
  };
  if (flags.Has("metrics-out")) {
    write(flags.GetStringOr("metrics-out", ""),
          obs::MetricsRegistry::Global().SnapshotJson() + "\n");
  }
  if (flags.Has("metrics-prom-out")) {
    write(flags.GetStringOr("metrics-prom-out", ""),
          obs::PrometheusTextFromGlobal());
  }
  if (flags.Has("trace-out")) {
    write(flags.GetStringOr("trace-out", ""),
          obs::Tracer::Global().ToChromeTraceJson() + "\n");
  }
  if (flags.Has("run-report")) {
    obs::RunReportOptions report;
    report.config.emplace_back("command", command);
    report.config.emplace_back("binary", "maroon_cli " MAROON_VERSION);
    const std::string value = flags.GetStringOr("run-report", "true");
    if (value == "true" || value.empty()) {
      std::cout << obs::RenderRunReportText(report);
    } else {
      write(value, obs::BuildRunReportJson(report) + "\n");
    }
  }
  return code;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.GetBoolOr("version", false)) {
    std::cout << "maroon_cli " << MAROON_VERSION << " (" << MAROON_GIT_DESCRIBE
              << ")\n";
    return 0;
  }
  if (flags.GetBoolOr("list-crash-points", false)) {
    // The kill-and-recover harness iterates this list; keep the format one
    // "<point>\t<description>" per line.
    for (const auto& [point, description] : failpoint::RegisteredPoints()) {
      std::cout << point << "\t" << description << "\n";
    }
    return 0;
  }
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  // Every export and scrape self-identifies the binary (maroon_build_info
  // with version/revision labels, maroon_uptime_seconds).
  obs::RegisterBuildMetrics();
  if (flags.Has("trace-out")) obs::Tracer::SetEnabled(true);
  const int64_t threads = flags.GetIntOr("threads", 0);
  if (threads > 0) {
    ThreadPool::SetDefaultThreadCount(static_cast<int>(threads));
  }
  // Periodic metrics time series: runs for the duration of the command and
  // always leaves a final row, so even short commands produce one snapshot.
  std::unique_ptr<obs::MetricsSnapshotWriter> snapshotter;
  if (flags.Has("metrics-jsonl")) {
    obs::MetricsSnapshotWriterOptions snapshot_options;
    snapshot_options.path = flags.GetStringOr("metrics-jsonl", "");
    snapshot_options.period_s = flags.GetDoubleOr("metrics-every-s", 10.0);
    if (snapshot_options.path.empty() || snapshot_options.period_s <= 0.0) {
      std::cerr << "error: --metrics-jsonl needs a path and a positive "
                   "--metrics-every-s\n";
      return Usage();
    }
    snapshotter =
        std::make_unique<obs::MetricsSnapshotWriter>(snapshot_options);
  } else if (flags.Has("metrics-every-s")) {
    std::cerr << "error: --metrics-every-s requires --metrics-jsonl=FILE\n";
    return Usage();
  }
  int code = 0;
  {
    // Top-level span so the exported trace covers the full command wall
    // time. Span names must outlive the tracer; one command per process.
    static const std::string top_name = "cli." + command;
    obs::Span top(top_name.c_str());
    code = Dispatch(flags, command);
  }
  if (snapshotter != nullptr) {
    snapshotter->Stop();
    if (!snapshotter->status().ok()) {
      std::cerr << "error: " << snapshotter->status() << "\n";
      if (code == 0) code = 1;
    }
  }
  return ExportObservability(flags, command, code);
}

}  // namespace
}  // namespace maroon

int main(int argc, char** argv) { return maroon::Main(argc, argv); }
