#!/usr/bin/env bash
# Checks that the tree is clang-format clean (Google style, .clang-format).
# Registered as the ctest `check_format` test and run by the CI lint job.
#
# Exit codes: 0 clean, 1 violations, 77 clang-format unavailable (ctest
# SKIP_RETURN_CODE — skipped with a notice, not failed).
set -u

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found on PATH; skipping" >&2
  exit 77
fi

# Lint fixtures under testdata/ contain deliberate rule violations and are
# exempt from formatting too.
mapfile -t files < <(find src tools tests bench \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) \
  -not -path '*/testdata/*' | sort)

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no sources found" >&2
  exit 1
fi

clang-format --dry-run -Werror "${files[@]}"
status=$?
if [ "$status" -eq 0 ]; then
  echo "check_format: ${#files[@]} file(s) clean"
fi
exit "$status"
