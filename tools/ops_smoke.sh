#!/bin/sh
# Live ops-plane smoke: boots `maroon_cli serve` against a freshly
# generated corpus, scrapes every route over real HTTP, validates the
# responses (the Prometheus exposition must pass `maroon_cli promlint` and
# carry maroon_build_info), then asserts a clean SIGTERM shutdown. A second
# run arms a persistent WAL-append fault and asserts /healthz flips to 503
# UNHEALTHY while the ops plane keeps serving — the broken-but-observable
# contract.
#
# Usage: tools/ops_smoke.sh [BUILD_DIR] [ARTIFACTS_DIR]
#   BUILD_DIR      cmake build tree, default ./build
#   ARTIFACTS_DIR  scrape artifacts (ops_metrics.prom, ops_*.json),
#                  default ./ops_artifacts
#
# Requires curl. Exit 0 = every check passed.

set -eu

BUILD_DIR="${1:-build}"
ARTIFACTS="${2:-ops_artifacts}"
CLI="$BUILD_DIR/tools/maroon_cli"

if [ ! -x "$CLI" ]; then
  echo "ops_smoke.sh: missing $CLI (build maroon_cli first)" >&2
  exit 1
fi
command -v curl > /dev/null 2>&1 || {
  echo "ops_smoke.sh: curl not found" >&2
  exit 1
}

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM
mkdir -p "$ARTIFACTS"

fail() {
  echo "FAIL: $1" >&2
  [ -f "$WORK/serve.log" ] && tail -20 "$WORK/serve.log" >&2
  exit 1
}

# Polls the health endpoint until the server answers (any status) or the
# budget runs out.
wait_for_server() {
  port="$1"
  tries=0
  while [ "$tries" -lt 100 ]; do
    if curl -s -o /dev/null "http://127.0.0.1:$port/healthz"; then
      return 0
    fi
    tries=$((tries + 1))
    sleep 0.1
  done
  return 1
}

echo "== generate corpus =="
"$CLI" generate --dataset=recruitment --out="$WORK/data" \
  --entities=40 --names=15 --seed=2015 > /dev/null

echo "== serve: healthy run =="
"$CLI" serve --data="$WORK/data" --wal-dir="$WORK/wal" \
  --port=0 --port-file="$WORK/port.txt" --throttle-us=500 \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
# The port file appears once the listener is up.
tries=0
while [ ! -s "$WORK/port.txt" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1))
  sleep 0.1
done
[ -s "$WORK/port.txt" ] || fail "serve never published its port"
PORT="$(cat "$WORK/port.txt")"
wait_for_server "$PORT" || fail "serve never answered on port $PORT"

echo "== scrape routes on port $PORT =="
curl -sf "http://127.0.0.1:$PORT/metrics" > "$ARTIFACTS/ops_metrics.prom" \
  || fail "/metrics did not answer 200"
curl -sf "http://127.0.0.1:$PORT/varz" > "$ARTIFACTS/ops_varz.json" \
  || fail "/varz did not answer 200"
curl -sf "http://127.0.0.1:$PORT/healthz" > "$ARTIFACTS/ops_healthz.json" \
  || fail "/healthz did not answer 200"
curl -sf "http://127.0.0.1:$PORT/statusz" > "$ARTIFACTS/ops_statusz.json" \
  || fail "/statusz did not answer 200"
curl -sf "http://127.0.0.1:$PORT/tracez" > "$ARTIFACTS/ops_tracez.json" \
  || fail "/tracez did not answer 200"
curl -sf "http://127.0.0.1:$PORT/readyz" > /dev/null \
  || fail "/readyz did not answer 200"

grep -q 'maroon_build_info{version=' "$ARTIFACTS/ops_metrics.prom" \
  || fail "exposition lacks maroon_build_info"
grep -q 'maroon_uptime_seconds' "$ARTIFACTS/ops_metrics.prom" \
  || fail "exposition lacks maroon_uptime_seconds"
grep -q 'maroon_stream_applied' "$ARTIFACTS/ops_metrics.prom" \
  || fail "exposition lacks the stream counters"
"$CLI" promlint "$ARTIFACTS/ops_metrics.prom" \
  || fail "exposition does not pass promlint"
grep -q '"overall": "OK"' "$ARTIFACTS/ops_healthz.json" \
  || fail "/healthz is not OK on a clean run"
grep -q '"version": "' "$ARTIFACTS/ops_statusz.json" \
  || fail "/statusz lacks the build version"
grep -q '"spans": \[' "$ARTIFACTS/ops_tracez.json" \
  || fail "/tracez lacks the span array"

echo "== SIGTERM: clean shutdown =="
kill -TERM "$SERVE_PID"
status=0
wait "$SERVE_PID" || status=$?
SERVE_PID=""
[ "$status" -eq 0 ] || fail "serve exited $status after SIGTERM"
grep -q 'serve: streamed' "$WORK/serve.log" \
  || fail "serve.log lacks the shutdown summary"

echo "== serve: latched WAL fault flips /healthz =="
MAROON_FAILPOINTS='wal.append.write=fail@0:0' \
  "$CLI" serve --data="$WORK/data" --wal-dir="$WORK/wal_fault" \
  --port=0 --port-file="$WORK/port_fault.txt" \
  > "$WORK/serve_fault.log" 2>&1 &
SERVE_PID=$!
tries=0
while [ ! -s "$WORK/port_fault.txt" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1))
  sleep 0.1
done
[ -s "$WORK/port_fault.txt" ] || fail "fault serve never published its port"
PORT="$(cat "$WORK/port_fault.txt")"
wait_for_server "$PORT" || fail "fault serve never answered on port $PORT"
# Give ingest a moment to hit the armed failpoint and latch the error.
sleep 1
HEALTH_STATUS="$(curl -s -o "$ARTIFACTS/ops_healthz_fault.json" \
  -w '%{http_code}' "http://127.0.0.1:$PORT/healthz")"
[ "$HEALTH_STATUS" = "503" ] \
  || fail "/healthz answered $HEALTH_STATUS under a WAL fault (want 503)"
grep -q '"overall": "UNHEALTHY"' "$ARTIFACTS/ops_healthz_fault.json" \
  || fail "/healthz body is not UNHEALTHY under a WAL fault"
# The ops plane must keep serving scrapes while ingest is down.
curl -sf "http://127.0.0.1:$PORT/metrics" > /dev/null \
  || fail "/metrics stopped serving under a WAL fault"
kill -TERM "$SERVE_PID"
status=0
wait "$SERVE_PID" || status=$?
SERVE_PID=""
# Halted ingest surfaces as exit 1 — anything else is a different bug.
[ "$status" -eq 1 ] || fail "fault serve exited $status (want 1)"

echo "wrote $ARTIFACTS/ops_metrics.prom and route snapshots"
echo "ops_smoke.sh: OK"
