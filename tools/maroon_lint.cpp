// maroon_lint — the MAROON project-invariant static checker.
//
// Tokenizes the C++ sources under src/, tools/, and tests/ (no compiler or
// LLVM dependency) and enforces the project rules R001-R014 documented in
// docs/static_analysis.md, src/lint/rules.h, and src/lint/concurrency.h.
// Zero findings is the merge bar; per-site escapes use
// `// maroon-lint: allow(<rule>)`, and whole pre-existing findings can be
// accepted temporarily through a baseline file.
//
// Usage:
//   maroon_lint [--root=DIR] [--json] [--baseline=FILE]
//               [--update-baseline] [path...]
//
//   --root=DIR          repository root (default "."); guards and display
//                       paths are derived relative to it
//   --json              machine-readable output (for CI and editors)
//   --baseline=FILE     suppress exactly the findings recorded in FILE; a
//                       recorded finding that no longer occurs is an error
//                       (stale baseline — shrink the file)
//   --update-baseline   with --baseline: rewrite FILE from the current
//                       findings and exit 0
//   --version           print version and exit
//   path...             files or directories to scan instead of the default
//                       {src, tools, tests}; explicit files bypass the
//                       testdata exclusion, which is how the fixture tests
//                       run
//
// Exit codes: 0 clean, 1 findings (or stale baseline), 2 usage or IO error.

#include <fstream>
#include <iostream>

#include "common/flags.h"
#include "lint/linter.h"
#include "maroon/version_info.h"

namespace maroon {
namespace {

int Usage() {
  std::cerr << "usage: maroon_lint [--root=DIR] [--json] [--baseline=FILE] "
               "[--update-baseline] [path...]\n"
               "  Lints MAROON C++ sources (default scan: src/ tools/ "
               "tests/ under --root).\n"
               "  Rules R001-R014; see docs/static_analysis.md.\n";
  return 2;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.GetBoolOr("version", false)) {
    std::cout << "maroon_lint " << MAROON_VERSION << " ("
              << MAROON_GIT_DESCRIBE << ")\n";
    return 0;
  }
  if (flags.GetBoolOr("help", false)) return Usage();
  for (const std::string& name : flags.FlagNames()) {
    if (name != "root" && name != "json" && name != "version" &&
        name != "help" && name != "baseline" && name != "update-baseline") {
      std::cerr << "maroon_lint: unknown flag --" << name << "\n";
      return Usage();
    }
  }

  lint::LintOptions options;
  options.root = flags.GetStringOr("root", ".");
  options.paths = flags.positional();
  const std::string baseline_path = flags.GetStringOr("baseline", "");
  const bool update_baseline = flags.GetBoolOr("update-baseline", false);
  if (update_baseline && baseline_path.empty()) {
    std::cerr << "maroon_lint: --update-baseline requires --baseline=FILE\n";
    return Usage();
  }

  Result<lint::LintResult> result = lint::RunLint(options);
  if (!result.ok()) {
    std::cerr << "maroon_lint: error: " << result.status() << "\n";
    return 2;
  }

  if (update_baseline) {
    std::ofstream out(baseline_path, std::ios::trunc);
    out << lint::SerializeBaseline(*result);
    out.flush();
    if (!out) {
      std::cerr << "maroon_lint: error: cannot write baseline "
                << baseline_path << "\n";
      return 2;
    }
    std::cout << "maroon_lint: recorded " << result->findings.size()
              << " finding(s) in " << baseline_path << "\n";
    return 0;
  }

  std::vector<lint::BaselineEntry> stale;
  if (!baseline_path.empty()) {
    const Result<lint::Baseline> baseline = lint::LoadBaseline(baseline_path);
    if (!baseline.ok()) {
      std::cerr << "maroon_lint: error: " << baseline.status() << "\n";
      return 2;
    }
    stale = lint::ApplyBaseline(*baseline, &*result);
  }

  std::cout << (flags.GetBoolOr("json", false) ? lint::RenderJson(*result)
                                               : lint::RenderText(*result));
  for (const lint::BaselineEntry& entry : stale) {
    std::cerr << "maroon_lint: stale baseline entry: " << entry.rule << " "
              << entry.file << ":" << entry.line
              << " no longer occurs; remove it from " << baseline_path
              << " (or regenerate with --update-baseline)\n";
  }
  return result->findings.empty() && stale.empty() ? 0 : 1;
}

}  // namespace
}  // namespace maroon

int main(int argc, char** argv) { return maroon::Main(argc, argv); }
