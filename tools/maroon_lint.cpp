// maroon_lint — the MAROON project-invariant static checker.
//
// Tokenizes the C++ sources under src/, tools/, and tests/ (no compiler or
// LLVM dependency) and enforces the project rules R001-R009 documented in
// docs/static_analysis.md and src/lint/rules.h. Zero findings is the merge
// bar; per-site escapes use `// maroon-lint: allow(<rule>)`.
//
// Usage:
//   maroon_lint [--root=DIR] [--json] [path...]
//
//   --root=DIR   repository root (default "."); guards and display paths
//                are derived relative to it
//   --json       machine-readable output (for CI and editors)
//   --version    print version and exit
//   path...      files or directories to scan instead of the default
//                {src, tools, tests}; explicit files bypass the testdata
//                exclusion, which is how the fixture tests run
//
// Exit codes: 0 clean, 1 findings, 2 usage or IO error.

#include <iostream>

#include "common/flags.h"
#include "lint/linter.h"
#include "maroon/version_info.h"

namespace maroon {
namespace {

int Usage() {
  std::cerr << "usage: maroon_lint [--root=DIR] [--json] [path...]\n"
               "  Lints MAROON C++ sources (default scan: src/ tools/ "
               "tests/ under --root).\n"
               "  Rules R001-R009; see docs/static_analysis.md.\n";
  return 2;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.GetBoolOr("version", false)) {
    std::cout << "maroon_lint " << MAROON_VERSION << " ("
              << MAROON_GIT_DESCRIBE << ")\n";
    return 0;
  }
  if (flags.GetBoolOr("help", false)) return Usage();
  for (const std::string& name : flags.FlagNames()) {
    if (name != "root" && name != "json" && name != "version" &&
        name != "help") {
      std::cerr << "maroon_lint: unknown flag --" << name << "\n";
      return Usage();
    }
  }

  lint::LintOptions options;
  options.root = flags.GetStringOr("root", ".");
  options.paths = flags.positional();

  const Result<lint::LintResult> result = lint::RunLint(options);
  if (!result.ok()) {
    std::cerr << "maroon_lint: error: " << result.status() << "\n";
    return 2;
  }
  std::cout << (flags.GetBoolOr("json", false) ? lint::RenderJson(*result)
                                               : lint::RenderText(*result));
  return result->findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace maroon

int main(int argc, char** argv) { return maroon::Main(argc, argv); }
